"""Parameter-sweep runner over the pipelined epoch simulator.

Every figure/table reproduction walks a grid of configurations — cache
sizes (Fig. 3), prep cores (Fig. 4), models (Figs. 6/9d), predictor
validation points (Tab. 5) — and each experiment module used to hand-roll
its own loops over :class:`~repro.sim.single_server.SingleServerTraining`
or :class:`~repro.sim.hp_search.HPSearchScenario`.  :class:`SweepRunner`
replaces those loops with one subsystem that

* expands a grid of (model, loader, cache size, cores, batch size)
  into :class:`SweepPoint`\\ s,
* **shares** dataset materialisation and per-epoch sampler permutations
  across all points of the same (dataset, seed) pair,
* runs every point through the simulator's vectorised fast path
  (:meth:`repro.sim.engine.PipelineSimulator.collect_batch_times`), and
* returns a tidy :class:`SweepResult` the experiment modules reduce into
  their :class:`~repro.experiments.base.ExperimentResult` tables.

Four point-kind families are supported: single-server training sweeps
(``loader`` in :data:`~repro.sim.single_server.LOADER_KINDS`), HP-search
scenario sweeps (``loader`` in :data:`HP_SEARCH_KINDS`, which run
:class:`~repro.sim.hp_search.HPSearchScenario` per point), multi-server
distributed sweeps (``loader`` in :data:`DISTRIBUTED_KINDS`, which run
:class:`~repro.sim.distributed.DistributedTraining` per point), and
failure/elasticity sweeps (``loader`` in :data:`FAILURE_KINDS`, which run
:class:`~repro.sim.failures.FailureScenario` per point and fold a
deterministic :class:`~repro.coordl.failure.FailureEvent` trace into the
snapshot).

Because every point is an independent simulation, :meth:`SweepRunner.run`
can fan a grid out over a spawn-safe ``multiprocessing`` worker pool
(``workers=N``).  Each worker rebuilds its substrates from the pickled
runner configuration and point spec alone; every point's sampling derives
from :meth:`SweepRunner.point_seed` — a stable hash derived from the point
spec that depends neither on scheduling order nor on worker count — and
results are reassembled in input order, so the parallel
:class:`SweepResult` is byte-identical to the serial one (asserted by the
golden and property tests in ``tests/test_golden_sweeps.py`` /
``tests/test_sweep_parallel.py``).

The same canonicalisation discipline powers the content-addressed result
store (:mod:`repro.store`): :meth:`SweepRunner.point_spec` renders the
(runner, point, env-flag) identity of a simulation, the store keys the
record's fully-invertible snapshot (:meth:`SweepRecord.snapshot` with
embedded timelines, inverted by :meth:`SweepRecord.from_snapshot`) under a
BLAKE2 digest of it, and :meth:`SweepRunner.run` partitions a grid into
store hits (rehydrated, byte-identical) and misses (simulated — serially,
through a per-call spawn pool, or through a long-lived
:class:`repro.store.PersistentPool` — then written back).
"""

from __future__ import annotations

import hashlib
import itertools
import math
import os
import pickle
import sys
import traceback
from dataclasses import dataclass, fields
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator,
                    List, Optional, Sequence, Tuple)

if TYPE_CHECKING:  # repro.store imports this module; annotation-only here
    from repro.store import PersistentPool, StoreArg

from repro.cache.warm_kernel import warm_kernel_enabled
from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec, get_model
from repro.datasets.catalog import get_dataset_spec
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import CachingSampler, RandomSampler, Sampler
from repro.exceptions import ConfigurationError, SimulationError, SweepPointError
from repro.pipeline.stats import EpochStats, TrainingRunStats
from repro.storage.iostats import IOStats
from repro.coordl.failure import FailureEvent
from repro.sim.distributed import DistributedEpoch, DistributedResult, DistributedTraining
from repro.sim.engine import PipelineSimulator
from repro.sim.failures import (
    FailureEpoch,
    FailureScenario,
    FailureScenarioResult,
)
from repro.sim.hp_search import HPSearchResult, HPSearchScenario
from repro.sim.single_server import LOADER_KINDS, build_loader

#: Sweep-point kinds simulated through :class:`HPSearchScenario` instead of
#: the single-server epoch pipeline.
HP_SEARCH_KINDS = ("hp-baseline", "hp-coordl")

#: Sweep-point kinds simulated through :class:`DistributedTraining`
#: (``cache_fraction`` / ``cache_bytes`` are per-server budgets there).
DISTRIBUTED_KINDS = ("dist-baseline", "dist-coordl")

#: Sweep-point kinds simulated through :class:`~repro.sim.failures.
#: FailureScenario` — the unhappy paths (crashes, elastic membership,
#: stragglers, multi-tenant cache contention).  ``cache_fraction`` /
#: ``cache_bytes`` are per-server budgets for the elastic/straggler kinds.
FAILURE_KINDS = ("coordl-crash", "coordl-elastic", "coordl-straggler",
                 "hp-multitenant")

#: Failure-kind → the scenario fields it plumbs through (anything else
#: kind-specific must stay at its default, enforced by point validation).
_FAILURE_FIELDS = {
    "coordl-crash": ("num_jobs", "crash_schedule"),
    "coordl-elastic": ("num_servers", "membership_schedule"),
    "coordl-straggler": ("num_servers", "straggler_factors"),
    "hp-multitenant": ("num_jobs", "tenants"),
}

#: Environment variable supplying the default worker count of
#: :meth:`SweepRunner.run` when the caller does not pass ``workers=``
#: explicitly (the CI ``workers=2`` leg sets it to run the whole tier-1
#: suite through the pool).
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"


def clamp_workers(workers: int) -> int:
    """Clamp a requested worker count to the machine's core count.

    Simulation workers are CPU-bound, so a pool wider than
    ``os.cpu_count()`` only adds spawn cost and scheduler contention — on
    a 1-core machine the unclamped ``workers=4`` pool ran the 16-point
    parallel benchmark at ~0.4x serial speed.  Clamping ``min(workers,
    cores)`` keeps an oversubscribed request no worse than a full-width
    pool (degrading toward serial, never below it); ``workers=0`` (serial)
    is preserved, and results are byte-identical either way.  Shared by
    :meth:`SweepRunner.run` and :class:`repro.store.PersistentPool`.
    """
    if workers <= 0:
        return workers
    return min(workers, os.cpu_count() or 1)


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep grid.

    Attributes:
        model: DNN trained at this point.
        loader: One of :data:`~repro.sim.single_server.LOADER_KINDS` for
            single-server training points, one of :data:`HP_SEARCH_KINDS`
            for HP-search scenario points, or one of
            :data:`DISTRIBUTED_KINDS` for multi-server points.
        dataset: Catalog name of the dataset; ``None`` uses the model's
            ``default_dataset`` (the Fig. 6/9 per-model convention).
        cache_fraction: Cache budget as a fraction of the dataset's bytes
            (may exceed 1.0 for fully-cached configurations); mutually
            exclusive with ``cache_bytes``.  ``None`` keeps the server's
            default budget.  For distributed points this is the *per-server*
            budget (Fig. 9b's convention).
        cache_bytes: Absolute cache budget override.
        cores: Physical prep cores for the job (``None``: all).
        num_gpus: GPUs used by the job (``None``: all on the server).
        batch_size: Explicit per-iteration batch size (``None``: derived
            from the model, clamped for scaled datasets).
        gpu_prep: Force GPU prep on/off (``None``: faster variant; treated
            as off for distributed points, matching Fig. 9b).
        num_epochs: Epochs to simulate (first is the cold-cache warm-up).
        num_jobs / gpus_per_job: HP-search points only (``num_jobs`` is
            also the crash kind's job count and the per-tenant job count
            of ``hp-multitenant``).
        num_servers: Distributed and elastic/straggler points only
            (homogeneous servers; the *initial* membership for
            ``coordl-elastic``).
        crash_schedule: ``coordl-crash`` only — ``(epoch, job)`` pairs;
            normalised to sorted order, so any permutation is the same
            point (and the same store key).
        membership_schedule: ``coordl-elastic`` only — ``(epoch, count)``
            pairs applied at the start of that epoch; sorted, epochs
            distinct.
        straggler_factors: ``coordl-straggler`` only — positional
            per-server fetch slowdowns (padded with 1.0).
        tenants: ``hp-multitenant`` only — campaigns of ``num_jobs`` jobs
            each sharing the server.
        label: Free-form tag carried through to the record.
    """

    model: ModelSpec
    loader: str = "coordl"
    dataset: Optional[str] = None
    cache_fraction: Optional[float] = None
    cache_bytes: Optional[float] = None
    cores: Optional[float] = None
    num_gpus: Optional[int] = None
    batch_size: Optional[int] = None
    gpu_prep: Optional[bool] = None
    num_epochs: int = 2
    num_jobs: int = 8
    gpus_per_job: int = 1
    num_servers: int = 2
    crash_schedule: Tuple[Tuple[int, int], ...] = ()
    membership_schedule: Tuple[Tuple[int, int], ...] = ()
    straggler_factors: Tuple[float, ...] = ()
    tenants: int = 2
    label: str = ""

    def __post_init__(self) -> None:
        # Normalise the schedule fields first (the serve wire format hands
        # them back as JSON lists; order canonicalisation makes a permuted
        # crash schedule the *same* point — same snapshot, same store key).
        object.__setattr__(self, "crash_schedule", tuple(sorted(
            (int(e), int(j)) for e, j in self.crash_schedule)))
        object.__setattr__(self, "membership_schedule", tuple(sorted(
            (int(e), int(n)) for e, n in self.membership_schedule)))
        object.__setattr__(self, "straggler_factors", tuple(
            float(f) for f in self.straggler_factors))
        known = (LOADER_KINDS + HP_SEARCH_KINDS + DISTRIBUTED_KINDS
                 + FAILURE_KINDS)
        if self.loader not in known:
            raise ConfigurationError(
                f"unknown sweep loader {self.loader!r}; expected one of {known}")
        if self.cache_fraction is not None and self.cache_bytes is not None:
            raise ConfigurationError(
                "give cache_fraction or cache_bytes, not both")
        if not self.is_hp_search and self.num_epochs < 2:
            raise ConfigurationError(
                "need at least two epochs (warm-up + one measured epoch)")
        if self.is_distributed and self.num_servers < 2:
            raise ConfigurationError(
                "distributed sweep points need at least two servers")
        # Fields that a point kind does not plumb through are rejected rather
        # than silently ignored: a plausible-looking result simulated without
        # the requested knob is worse than an error.
        scenario_fields = (("num_jobs", self.num_jobs, 8),
                           ("gpus_per_job", self.gpus_per_job, 1),
                           ("num_servers", self.num_servers, 2),
                           ("crash_schedule", self.crash_schedule, ()),
                           ("membership_schedule", self.membership_schedule, ()),
                           ("straggler_factors", self.straggler_factors, ()),
                           ("tenants", self.tenants, 2))
        if self.is_failure:
            inapplicable = [("batch_size", self.batch_size),
                            ("cores", self.cores),
                            ("num_gpus", self.num_gpus),
                            ("gpu_prep", self.gpu_prep)]
            bad = [name for name, value in inapplicable if value is not None]
            if bad:
                raise ConfigurationError(
                    f"{self.loader!r} sweep points do not support {bad} "
                    "(training-point-only fields)")
            allowed = _FAILURE_FIELDS[self.loader]
            bad = [name for name, value, default in scenario_fields
                   if value != default and name not in allowed]
            if bad:
                raise ConfigurationError(
                    f"{self.loader!r} sweep points do not support {bad} "
                    "(fields of another scenario kind)")
            self._validate_failure_point()
        elif self.is_hp_search or self.is_distributed:
            inapplicable = [("batch_size", self.batch_size),
                            ("cores", self.cores),
                            ("num_gpus", self.num_gpus)]
            if self.is_hp_search:
                inapplicable.append(("gpu_prep", self.gpu_prep))
            bad = [name for name, value in inapplicable if value is not None]
            if bad:
                raise ConfigurationError(
                    f"{self.loader!r} sweep points do not support {bad} "
                    "(training-point-only fields)")
            failure_only = ("crash_schedule", "membership_schedule",
                            "straggler_factors", "tenants")
            bad = [name for name, value, default in scenario_fields
                   if value != default and name in failure_only]
            if bad:
                raise ConfigurationError(
                    f"{self.loader!r} sweep points do not support {bad} "
                    "(failure-point-only fields)")
        else:
            bad = [name for name, value, default in scenario_fields
                   if value != default]
            if bad:
                raise ConfigurationError(
                    f"training sweep points do not support {bad} "
                    "(scenario-point-only fields)")

    def _validate_failure_point(self) -> None:
        """Range/shape checks of the failure kinds' schedule fields."""
        if self.loader == "coordl-crash":
            jobs = [job for _, job in self.crash_schedule]
            for epoch, job in self.crash_schedule:
                if not 0 <= epoch < self.num_epochs:
                    raise ConfigurationError(
                        f"crash epoch {epoch} outside [0, {self.num_epochs})")
                if not 0 <= job < self.num_jobs:
                    raise ConfigurationError(
                        f"crashed job {job} outside [0, {self.num_jobs})")
            if len(set(jobs)) != len(jobs):
                raise ConfigurationError(
                    "a job can crash at most once (dead jobs stay dead)")
            if len(jobs) >= self.num_jobs:
                raise ConfigurationError(
                    "crash schedule must leave at least one surviving job")
        elif self.loader == "coordl-elastic":
            if self.num_servers < 2:
                raise ConfigurationError(
                    "elastic sweep points need at least two initial servers")
            epochs = [epoch for epoch, _ in self.membership_schedule]
            for epoch, count in self.membership_schedule:
                if not 1 <= epoch < self.num_epochs:
                    raise ConfigurationError(
                        f"membership change at epoch {epoch} outside "
                        f"[1, {self.num_epochs}) (epoch 0 is the initial "
                        "membership)")
                if count < 1:
                    raise ConfigurationError(
                        "membership cannot drop below one server")
            if len(set(epochs)) != len(epochs):
                raise ConfigurationError(
                    "at most one membership change per epoch")
        elif self.loader == "coordl-straggler":
            if self.num_servers < 2:
                raise ConfigurationError(
                    "straggler sweep points need at least two servers")
            if len(self.straggler_factors) > self.num_servers:
                raise ConfigurationError(
                    f"{len(self.straggler_factors)} straggler factors for "
                    f"{self.num_servers} servers")
            for factor in self.straggler_factors:
                if not (factor > 0 and math.isfinite(factor)):
                    raise ConfigurationError(
                        "straggler factors must be positive and finite")
        elif self.tenants < 1:
            raise ConfigurationError("need at least one tenant")

    @property
    def is_hp_search(self) -> bool:
        """Whether this point runs through the HP-search scenario."""
        return self.loader in HP_SEARCH_KINDS

    @property
    def is_distributed(self) -> bool:
        """Whether this point runs through the distributed scenario."""
        return self.loader in DISTRIBUTED_KINDS

    @property
    def is_failure(self) -> bool:
        """Whether this point runs through the failure/elasticity scenario."""
        return self.loader in FAILURE_KINDS

    def describe(self) -> str:
        """The point's label, or a synthesised short description.

        Used in error messages (:class:`~repro.exceptions.SweepPointError`)
        so a failing point can be located in its grid.
        """
        if self.label:
            return self.label
        parts = [self.model.name, self.loader]
        if self.dataset is not None:
            parts.append(self.dataset)
        if self.cache_fraction is not None:
            parts.append(f"cache={self.cache_fraction:g}")
        if self.cache_bytes is not None:
            parts.append(f"cache_bytes={self.cache_bytes:g}")
        if self.cores is not None:
            parts.append(f"cores={self.cores:g}")
        if self.batch_size is not None:
            parts.append(f"batch={self.batch_size}")
        return "/".join(parts)


def _hex(value: float) -> str:
    """Lossless, byte-exact float representation for snapshots."""
    return float(value).hex()


def _canonical(value: Any) -> Any:
    """JSON-stable value for store-key specs (floats byte-exact).

    Tuples (the schedule fields of the failure kinds) render as lists —
    the JSON form — element-recursively, so a point's canonical identity
    is independent of the tuple/list distinction the wire format erases.
    """
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    # bool before float: isinstance(True, int) but bools are JSON-stable.
    if isinstance(value, bool) or not isinstance(value, float):
        return value
    return _hex(value)


def _jsonable(value: Any) -> Any:
    """Tuple-free rendering of a point field for snapshots (JSON round-trip
    stable: what comes back from ``json.loads`` compares equal)."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def _io_snapshot(io: IOStats, include_timeline: bool = False) -> Dict[str, Any]:
    """Canonical byte-exact form of one epoch's I/O counters.

    The (possibly long) per-read disk timeline is folded into a digest: two
    timelines agree on the digest iff they agree sample-for-sample on the
    exact float bits, which keeps golden files small without weakening the
    byte-identical guarantee.  ``include_timeline`` additionally embeds the
    raw ``(time, bytes)`` samples in hex form — the self-contained variant
    the result store persists so a hit can be rehydrated losslessly
    (:meth:`SweepRecord.from_snapshot`); the digest form alone cannot be
    inverted.
    """
    digest = hashlib.blake2b(digest_size=16)
    for t, b in io.timeline:
        digest.update(f"{_hex(t)}:{_hex(b)};".encode("ascii"))
    data: Dict[str, Any] = {
        "disk_bytes": _hex(io.disk_bytes),
        "disk_requests": io.disk_requests,
        "cache_bytes": _hex(io.cache_bytes),
        "cache_requests": io.cache_requests,
        "remote_bytes": _hex(io.remote_bytes),
        "remote_requests": io.remote_requests,
        "timeline_len": len(io.timeline),
        "timeline_digest": digest.hexdigest(),
    }
    if include_timeline:
        # Same rendering the digest hashes: one compact delimited string
        # parses several times faster than nested JSON arrays and keeps
        # store entries ~40% smaller.
        data["timeline"] = ";".join(f"{_hex(t)}:{_hex(b)}"
                                    for t, b in io.timeline)
    return data


def _io_from_snapshot(data: Dict[str, Any]) -> IOStats:
    """Inverse of :func:`_io_snapshot` (requires the embedded timeline)."""
    if data.get("timeline_len", 0) and "timeline" not in data:
        raise ConfigurationError(
            "I/O snapshot carries only the timeline digest; rehydration needs "
            "the full-timeline form (snapshot(include_timeline=True))")
    io = IOStats(
        disk_bytes=float.fromhex(data["disk_bytes"]),
        disk_requests=int(data["disk_requests"]),
        cache_bytes=float.fromhex(data["cache_bytes"]),
        cache_requests=int(data["cache_requests"]),
        remote_bytes=float.fromhex(data["remote_bytes"]),
        remote_requests=int(data["remote_requests"]),
    )
    fromhex = float.fromhex
    io.timeline = [(fromhex(t), fromhex(b))
                   for t, _, b in (sample.partition(":") for sample
                                   in data.get("timeline", "").split(";")
                                   if sample)]
    return io


def _epoch_snapshot(stats: EpochStats,
                    include_timeline: bool = False) -> Dict[str, Any]:
    """Canonical byte-exact form of one :class:`EpochStats`."""
    return {
        "epoch_time_s": _hex(stats.epoch_time_s),
        "gpu_time_s": _hex(stats.gpu_time_s),
        "prep_limited_time_s": _hex(stats.prep_limited_time_s),
        "samples": stats.samples,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "io": _io_snapshot(stats.io, include_timeline),
    }


def _epoch_from_snapshot(data: Dict[str, Any]) -> EpochStats:
    """Inverse of :func:`_epoch_snapshot`."""
    return EpochStats(
        epoch_time_s=float.fromhex(data["epoch_time_s"]),
        gpu_time_s=float.fromhex(data["gpu_time_s"]),
        prep_limited_time_s=float.fromhex(data["prep_limited_time_s"]),
        samples=int(data["samples"]),
        io=_io_from_snapshot(data["io"]),
        cache_hits=int(data["cache_hits"]),
        cache_misses=int(data["cache_misses"]),
    )


@dataclass
class SweepRecord:
    """Outcome of one sweep point.

    Training points carry the full multi-epoch ``run``; HP-search points
    carry the scenario's steady-state ``hp`` result; distributed points
    carry the multi-epoch, multi-server ``dist`` result; failure points
    carry the multi-epoch ``failure`` result with its event trace.
    """

    point: SweepPoint
    dataset_name: str
    loader_name: str
    run: Optional[TrainingRunStats] = None
    hp: Optional[HPSearchResult] = None
    dist: Optional[DistributedResult] = None
    failure: Optional[FailureScenarioResult] = None

    @property
    def steady(self) -> EpochStats:
        """Representative steady-state epoch (training points)."""
        if self.run is None:
            raise ConfigurationError(
                f"sweep point {self.point.loader!r} has no epoch run "
                "(HP-search points expose .hp, distributed points .dist)")
        return self.run.steady_epoch()

    @property
    def dist_steady(self) -> DistributedEpoch:
        """Representative steady-state job epoch (distributed points)."""
        if self.dist is None:
            raise ConfigurationError(
                f"sweep point {self.point.loader!r} has no distributed run")
        return self.dist.steady_epochs()[-1]

    def row(self) -> Dict[str, Any]:
        """Tidy-table row: the point's configuration plus key metrics."""
        values: Dict[str, Any] = {
            "model": self.point.model.name,
            "loader": self.point.loader,
            "loader_name": self.loader_name,
            "dataset": self.dataset_name,
            "cache_fraction": self.point.cache_fraction,
            "cores": self.point.cores,
            "batch_size": self.point.batch_size,
            "label": self.point.label,
        }
        if self.hp is not None:
            values.update(
                epoch_time_s=self.hp.epoch_time_s,
                throughput=self.hp.per_job_throughput,
                disk_bytes=self.hp.disk_bytes_per_epoch,
                cache_miss_ratio=self.hp.cache_miss_ratio,
            )
        elif self.failure is not None:
            steady = self.failure.steady_epoch_time_s
            values.update(
                epoch_time_s=steady,
                throughput=(self.failure.samples_per_epoch / steady
                            if steady else 0.0),
                disk_bytes=self.failure.total_disk_bytes,
                rewarm_bytes=self.failure.total_rewarm_bytes,
                events=len(self.failure.events),
            )
        elif self.dist is not None:
            steady = self.dist_steady
            values.update(
                epoch_time_s=steady.epoch_time_s,
                throughput=steady.throughput,
                disk_bytes=steady.total_disk_bytes,
                remote_bytes=steady.total_remote_bytes,
            )
        else:
            steady = self.steady
            values.update(
                epoch_time_s=steady.epoch_time_s,
                throughput=steady.throughput,
                fetch_stall_s=steady.fetch_stall_s,
                prep_stall_s=steady.prep_stall_s,
                disk_bytes=steady.io.disk_bytes,
                cache_miss_ratio=steady.cache_miss_ratio,
            )
        return values

    def snapshot(self, include_timeline: bool = False) -> Dict[str, Any]:
        """Canonical, byte-exact, JSON-serialisable form of this record.

        Floats are rendered with :meth:`float.hex` (lossless), so two
        snapshots compare equal **iff** the underlying results are
        bit-identical.  This is what the golden regression tests and the
        serial-vs-parallel determinism tests diff.

        With ``include_timeline`` the per-read disk timelines are embedded
        sample by sample (hex floats) instead of digest-only, which makes
        the snapshot fully invertible — :meth:`from_snapshot` rehydrates a
        bit-identical record from it.  The result store persists this form;
        the committed goldens keep the compact digest-only default.
        """
        point = {
            f.name: (self.point.model.name if f.name == "model"
                     else _jsonable(getattr(self.point, f.name)))
            for f in fields(SweepPoint)
        }
        data: Dict[str, Any] = {
            "point": point,
            "dataset": self.dataset_name,
            "loader_name": self.loader_name,
        }
        if self.run is not None:
            data["epochs"] = [_epoch_snapshot(e, include_timeline)
                              for e in self.run.epochs]
        if self.hp is not None:
            data["hp"] = {
                "loader_name": self.hp.loader_name,
                "num_jobs": self.hp.num_jobs,
                "gpus_per_job": self.hp.gpus_per_job,
                "epoch_time_s": _hex(self.hp.epoch_time_s),
                "per_job_throughput": _hex(self.hp.per_job_throughput),
                "disk_bytes_per_epoch": _hex(self.hp.disk_bytes_per_epoch),
                "cache_miss_ratio": _hex(self.hp.cache_miss_ratio),
                "prep_bound": self.hp.prep_bound,
                "fetch_bound": self.hp.fetch_bound,
                "gpu_bound": self.hp.gpu_bound,
                "staging_peak_bytes": _hex(self.hp.staging_peak_bytes),
            }
        if self.dist is not None:
            data["dist"] = [
                [_epoch_snapshot(server, include_timeline)
                 for server in epoch.per_server]
                for epoch in self.dist.epochs
            ]
        if self.failure is not None:
            data["failure"] = {
                "loader_name": self.failure.loader_name,
                "samples_per_epoch": self.failure.samples_per_epoch,
                "epochs": [{
                    "epoch_time_s": _hex(e.epoch_time_s),
                    "disk_bytes": _hex(e.disk_bytes),
                    "remote_bytes": _hex(e.remote_bytes),
                    "rewarm_bytes": _hex(e.rewarm_bytes),
                    "stall_s": _hex(e.stall_s),
                    "cache_miss_ratio": _hex(e.cache_miss_ratio),
                    "active": e.active,
                } for e in self.failure.epochs],
                "events": [{
                    "kind": ev.kind,
                    "failed_job": ev.failed_job,
                    "detected_at": _hex(ev.detected_at),
                    "reassigned_to": ev.reassigned_to,
                    "missing_batch_id": ev.missing_batch_id,
                } for ev in self.failure.events],
            }
        return data

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "SweepRecord":
        """Rehydrate a record from :meth:`snapshot(include_timeline=True)`.

        The inverse is exact: floats come back bit for bit from their hex
        form, the model is resolved by name from the zoo, and the disk
        timelines are rebuilt from the embedded samples — so
        ``SweepRecord.from_snapshot(r.snapshot(include_timeline=True))``
        snapshots byte-identically to ``r``.  A digest-only snapshot with a
        non-empty timeline cannot be inverted and raises
        :class:`~repro.exceptions.ConfigurationError` (the store never
        writes that form).

        The model resolves through the zoo by name, so records simulated
        under a *custom* :class:`ModelSpec` rehydrate to the zoo spec (or
        fail for non-zoo names); the store's point guard rejects both
        cases as misses — custom-model sweeps stay correct but never warm.
        (They can never be *served wrongly* either: the content address
        covers every ``ModelSpec`` field, not just the name.)
        """
        point_data = dict(data["point"])
        model = get_model(point_data.pop("model"))
        point = SweepPoint(model=model, **point_data)
        record = cls(point=point, dataset_name=data["dataset"],
                     loader_name=data["loader_name"])
        if "epochs" in data:
            run = TrainingRunStats()
            for epoch in data["epochs"]:
                run.add(_epoch_from_snapshot(epoch))
            record.run = run
        if "hp" in data:
            hp = data["hp"]
            record.hp = HPSearchResult(
                loader_name=hp["loader_name"],
                num_jobs=int(hp["num_jobs"]),
                gpus_per_job=int(hp["gpus_per_job"]),
                epoch_time_s=float.fromhex(hp["epoch_time_s"]),
                per_job_throughput=float.fromhex(hp["per_job_throughput"]),
                disk_bytes_per_epoch=float.fromhex(hp["disk_bytes_per_epoch"]),
                cache_miss_ratio=float.fromhex(hp["cache_miss_ratio"]),
                prep_bound=bool(hp["prep_bound"]),
                fetch_bound=bool(hp["fetch_bound"]),
                gpu_bound=bool(hp["gpu_bound"]),
                staging_peak_bytes=float.fromhex(hp["staging_peak_bytes"]),
            )
        if "dist" in data:
            record.dist = DistributedResult(
                loader_name=data["loader_name"],
                epochs=[DistributedEpoch(per_server=[
                    _epoch_from_snapshot(server) for server in epoch])
                    for epoch in data["dist"]],
            )
        if "failure" in data:
            failure = data["failure"]
            record.failure = FailureScenarioResult(
                loader_name=failure["loader_name"],
                samples_per_epoch=int(failure["samples_per_epoch"]),
                epochs=[FailureEpoch(
                    epoch_time_s=float.fromhex(e["epoch_time_s"]),
                    disk_bytes=float.fromhex(e["disk_bytes"]),
                    remote_bytes=float.fromhex(e["remote_bytes"]),
                    rewarm_bytes=float.fromhex(e["rewarm_bytes"]),
                    stall_s=float.fromhex(e["stall_s"]),
                    cache_miss_ratio=float.fromhex(e["cache_miss_ratio"]),
                    active=int(e["active"]),
                ) for e in failure["epochs"]],
                events=[FailureEvent(
                    kind=ev["kind"],
                    failed_job=int(ev["failed_job"]),
                    detected_at=float.fromhex(ev["detected_at"]),
                    reassigned_to=int(ev["reassigned_to"]),
                    missing_batch_id=int(ev["missing_batch_id"]),
                ) for ev in failure["events"]],
            )
        return record


class SweepResult:
    """Tidy collection of sweep records with config-based selection."""

    def __init__(self, records: Sequence[SweepRecord]) -> None:
        self._records = list(records)

    def __iter__(self) -> Iterator[SweepRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[SweepRecord]:
        """All records, in sweep order."""
        return list(self._records)

    def filter(self, **attrs: Any) -> "SweepResult":
        """Records whose :class:`SweepPoint` matches every given attribute."""
        point_fields = {f.name for f in fields(SweepPoint)}
        unknown = set(attrs) - point_fields
        if unknown:
            raise ConfigurationError(f"unknown sweep-point fields {sorted(unknown)}")
        kept = [r for r in self._records
                if all(getattr(r.point, k) == v for k, v in attrs.items())]
        return SweepResult(kept)

    def one(self, **attrs: Any) -> SweepRecord:
        """The unique record matching the given point attributes."""
        matches = self.filter(**attrs)
        if len(matches) != 1:
            raise ConfigurationError(
                f"expected exactly one record for {attrs}, found {len(matches)}")
        return matches.records[0]

    def rows(self) -> List[Dict[str, Any]]:
        """One tidy dict per record (config columns + key metrics)."""
        return [record.row() for record in self._records]

    def snapshot(self) -> Dict[str, Any]:
        """Byte-exact canonical form of the whole sweep, in sweep order.

        See :meth:`SweepRecord.snapshot`; equal snapshots mean bit-identical
        results, which is the contract the parallel executor is tested
        against (serial ≡ ``workers=N`` for every N).
        """
        return {"records": [record.snapshot() for record in self._records]}


class SweepRunner:
    """Run a grid of simulation configurations with shared substrates.

    Args:
        server_factory: Callable building the server model, accepting a
            ``cache_bytes`` keyword (e.g.
            :func:`repro.cluster.configs.config_ssd_v100`).  Must be
            picklable (a module-level function) for ``workers > 0``.
        scale: Dataset scale applied to every point (experiments pass their
            usual ``SWEEP_SCALE``/``DEFAULT_SCALE``).
        seed: Root seed.  Dataset materialisation uses it directly (every
            point of a sweep must see the *same* dataset bytes, or cache
            fractions would not be comparable); sampling/scenario seeds are
            derived from it per point via :meth:`point_seed`.
        queue_depth: Prefetch queue depth of the simulated pipeline.
        fast_path: Allow the vectorised epoch collection (disable to force
            the per-batch reference path, e.g. for benchmarking it).
        dataset_cache / sampler_cache: Optional externally-owned memo dicts
            for the shared substrates.  Datasets key by ``(name, seed,
            scale)`` and samplers by ``(dataset size, sampling seed)``, so
            one process-wide dict can be shared safely across runners —
            which is how :class:`repro.store.PersistentPool` workers avoid
            rematerialising datasets across successive ``run()`` calls and
            runner configurations.  ``None`` keeps a private per-runner
            cache (the default, and the previous behaviour).
    """

    def __init__(self, server_factory: Callable[..., ServerConfig], *,
                 scale: float = 1.0, seed: int = 0, queue_depth: int = 4,
                 fast_path: bool = True,
                 dataset_cache: Optional[Dict[Tuple[str, int, float],
                                              SyntheticDataset]] = None,
                 sampler_cache: Optional[Dict[Tuple[int, int],
                                              Sampler]] = None) -> None:
        self._server_factory = server_factory
        self._scale = scale
        self._seed = seed
        self._queue_depth = queue_depth
        self._fast_path = fast_path
        self._datasets = {} if dataset_cache is None else dataset_cache
        self._samplers = {} if sampler_cache is None else sampler_cache

    @staticmethod
    def grid(models: Sequence[ModelSpec], loaders: Sequence[str],
             cache_fractions: Sequence[Optional[float]] = (None,),
             cores: Sequence[Optional[float]] = (None,),
             batch_sizes: Sequence[Optional[int]] = (None,),
             **common: Any) -> List[SweepPoint]:
        """Cross-product grid of sweep points.

        ``common`` keyword arguments (``dataset``, ``num_epochs``,
        ``gpu_prep``, ...) are applied to every point.
        """
        return [
            SweepPoint(model=model, loader=loader, cache_fraction=fraction,
                       cores=core, batch_size=batch, **common)
            for model, loader, fraction, core, batch in itertools.product(
                models, loaders, cache_fractions, cores, batch_sizes)
        ]

    # -- shared substrate construction --------------------------------------

    def dataset(self, name: str) -> SyntheticDataset:
        """Materialise (once) the scaled dataset of the given catalog name.

        Keyed by ``(name, seed, scale)`` so the memo dict stays correct
        when shared across runners (see ``dataset_cache``); for a private
        cache the seed/scale components are constant and the behaviour is
        the old per-name memoisation.
        """
        key = (name, self._seed, self._scale)
        cached = self._datasets.get(key)
        if cached is None:
            cached = SyntheticDataset(get_dataset_spec(name), seed=self._seed,
                                      scale=self._scale)
            self._datasets[key] = cached
        return cached

    def point_seed(self, point: SweepPoint) -> int:
        """Stable sampling seed for one point, derived from the point spec.

        A BLAKE2 hash of the runner seed and the point's *resolved dataset*
        — the only field that defines which stochastic item stream the
        point samples.  Two properties matter:

        * the derivation is a pure function of the point spec, independent
          of the point's grid position, of which process simulates it and
          of the worker count — which is what lets a spawned worker rebuild
          the exact sampling a serial run would use, byte for byte;
        * configuration knobs (``loader``, cache budget, cores, ...) and
          ``label`` deliberately do **not** participate, so every point of
          a sweep that walks the same dataset sees the *same* per-epoch
          permutations: the paired comparisons the experiments report
          (DALI vs CoorDL at one cache size, baseline vs coordinated) stay
          free of unpaired sampling noise, exactly as in a serial sweep
          sharing one memoised sampler.
        """
        key = (self._seed, point.dataset or point.model.default_dataset)
        digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def _shared_sampler(self, dataset: SyntheticDataset,
                        seed: Optional[int] = None) -> Sampler:
        """One memoised random sampler per (dataset size, seed) pair.

        Points of a grid that hash to the same :meth:`point_seed` (and any
        caller using the runner-seed default) share the memoised per-epoch
        permutations instead of redrawing them.
        """
        if seed is None:
            seed = self._seed
        sampler = self._samplers.get((len(dataset), seed))
        if sampler is None:
            sampler = CachingSampler(RandomSampler(len(dataset), seed=seed))
            self._samplers[(len(dataset), seed)] = sampler
        return sampler

    def _resolve(self, point: SweepPoint) -> tuple:
        dataset = self.dataset(point.dataset or point.model.default_dataset)
        cache_bytes = point.cache_bytes
        if point.cache_fraction is not None:
            cache_bytes = dataset.total_bytes * point.cache_fraction
        if cache_bytes is not None:
            server = self._server_factory(cache_bytes=cache_bytes)
        else:
            server = self._server_factory()
        return dataset, server

    # -- content-addressed identity ------------------------------------------

    def spec(self) -> tuple:
        """Picklable runner configuration (enough to rebuild this runner).

        Workers — the per-``run()`` spawn pool and
        :class:`repro.store.PersistentPool` alike — reconstruct an
        equivalent runner from exactly this tuple, so anything that can
        change a simulated bit must be in it.
        """
        return (self._server_factory, self._scale, self._seed,
                self._queue_depth, self._fast_path)

    def point_spec(self, point: SweepPoint) -> Dict[str, Any]:
        """Canonical, JSON-stable identity of one (runner, point) pairing.

        This is what the result store hashes into a content address
        (:func:`repro.store.store_key`).  It extends :meth:`point_seed`'s
        canonicalisation discipline — a pure function of configuration,
        independent of grid position, scheduling and worker count — to
        *every* input that can move a simulated bit:

        * the runner spec (server factory by qualified name — see
          :meth:`_factory_identity` for why that is safe — plus scale,
          seed, queue depth and the ``fast_path`` toggle),
        * the full point spec: all :class:`SweepPoint` fields, the model
          expanded to *every* :class:`ModelSpec` field — not just its name,
          so a custom spec reusing a zoo name can never share an address
          with the zoo model — and ``label`` (it is part of the record's
          byte-exact snapshot), and
        * result-affecting environment kill-switches — currently the warm
          segmented-LRU kernel toggle.  The kernel is byte-exact either
          way, but a store must never answer a query for one configuration
          with bytes computed under another, so the flag keys the entry.

        Floats are rendered with :meth:`float.hex` so the identity is as
        byte-exact as the snapshots it addresses.  ``REPRO_SWEEP_WORKERS``
        deliberately does **not** participate: worker count is proven not
        to change results (the golden tests), so serial and pooled runs
        share entries.
        """
        point_fields: Dict[str, Any] = {}
        for f in fields(SweepPoint):
            value = getattr(point, f.name)
            if f.name == "model":
                value = {mf.name: _canonical(getattr(point.model, mf.name))
                         for mf in fields(ModelSpec)}
            else:
                value = _canonical(value)
            point_fields[f.name] = value
        return {
            "runner": {
                "server_factory": self._factory_identity(),
                "scale": _hex(self._scale),
                "seed": self._seed,
                "queue_depth": self._queue_depth,
                "fast_path": bool(self._fast_path),
            },
            "point": point_fields,
            "env": {"warm_kernel": warm_kernel_enabled()},
        }

    def _factory_identity(self) -> str:
        """``module:qualname`` of the server factory, proven resolvable.

        Naming the factory is only a sound content address if the name
        uniquely identifies the behaviour — which holds exactly when the
        name resolves back to *this* object (a module-level function, the
        same constraint pickling already imposes for ``workers > 0``).
        Closures, lambdas and ``functools.partial`` objects fail that
        round-trip (two ``make(100)``/``make(500)`` closures would share a
        qualified name and silently cross-serve bytes), so they are
        rejected loudly rather than mis-keyed.  Memoised per runner.
        """
        cached = getattr(self, "_factory_token", None)
        if cached is not None:
            return cached
        factory = self._server_factory
        module = getattr(factory, "__module__", None)
        qualname = getattr(factory, "__qualname__", None)
        resolved: Any = sys.modules.get(module) if module else None
        if qualname is not None and "<locals>" not in qualname:
            for part in qualname.split("."):
                resolved = getattr(resolved, part, None)
        else:
            resolved = None
        if resolved is not factory:
            raise ConfigurationError(
                f"result-store keying needs a module-level server factory "
                f"whose qualified name resolves back to it; got {factory!r} "
                f"(a closure, lambda, partial or shadowed name) — pass "
                f"store=False or lift the factory to module level")
        self._factory_token = f"{module}:{qualname}"
        return self._factory_token

    # -- execution ----------------------------------------------------------

    def run(self, points: Iterable[SweepPoint], workers: Optional[int] = None,
            chunksize: Optional[int] = None, store: "StoreArg" = None,
            pool: Optional["PersistentPool"] = None,
            on_record: Optional[Callable[[int, SweepRecord], None]] = None,
            ) -> SweepResult:
        """Simulate every point and return the tidy result table.

        Args:
            points: Sweep points to simulate; the result keeps their order.
            workers: Worker processes to fan the grid out over.  ``0`` and
                ``1`` (and single-point grids) simulate in-process — a
                one-worker spawn pool would pay the spawn and
                substrate-rebuild cost for no parallelism; ``None`` reads
                the :data:`WORKERS_ENV_VAR` environment variable,
                defaulting to ``0``.  Counts above ``os.cpu_count()`` are
                clamped to it
                (oversubscribing a small machine degrades toward serial
                speed, it never helps).  Results are byte-identical for
                every value.
            chunksize: Points pickled to a worker per task (default: grid
                split into about four chunks per worker).
            store: Content-addressed result store
                (:class:`repro.store.SweepStore`, or a directory path).
                Points whose key is already stored are rehydrated instead
                of simulated; newly simulated points are written back.
                ``None`` reads the :data:`repro.store.STORE_ENV_VAR`
                environment variable (no store when unset); ``False``
                disables the store even when the variable is set.  Results
                are byte-identical with and without a store.
            pool: A :class:`repro.store.PersistentPool` whose workers
                outlive this call, or any object with the same
                ``run_points(spec, indexed_points, chunksize,
                on_record=...)`` surface — :class:`repro.dist.DistExecutor`
                satisfies it to fan the grid out over remote worker
                agents.  Takes precedence over ``workers`` for the points
                that actually need simulating; store hits never touch the
                pool (or the network).
            on_record: Streaming hook called as ``on_record(index, record)``
                once per input point, as its record becomes available —
                immediately for store hits, in completion order for
                simulated points (before this method returns, and before a
                late failure is raised).  This is the coalescing hook the
                serve layer's batcher (:mod:`repro.serve`) uses to resolve
                per-point futures while a shared grid is still draining;
                the callback runs on the caller's thread and must not
                raise.

        Raises:
            SweepPointError: A point failed to simulate.  The failing
                point's label/description is in the message and the
                original exception — re-raised from a worker when the point
                ran in one — is chained as ``__cause__``.  Failed points
                are never written to the store, but points that finished
                *before* the failure (or an interruption) already are —
                the retry resumes from them.
        """
        from repro.store import (  # local: repro.store imports us
            resolve_store,
            runner_spec_digest,
            store_key,
        )

        points = list(points)
        workers = self._resolve_workers(workers)
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be at least 1")
        records: List[Optional[SweepRecord]] = [None] * len(points)
        sweep_store = resolve_store(store)
        if sweep_store is not None:
            try:
                self._factory_identity()
            except ConfigurationError:
                # An *ambient* store (the REPRO_SWEEP_STORE default) must
                # not break runners the store cannot key — closure/lambda
                # factories simulated fine before the store existed, so
                # they simply bypass it.  An explicitly requested store
                # still fails loudly: the caller asked for memoisation the
                # runner cannot soundly get.
                if store is not None:
                    raise
                sweep_store = None
        keys: List[Optional[str]] = [None] * len(points)
        runner_digest = ""
        to_run = list(enumerate(points))
        if sweep_store is not None:
            to_run = []
            for index, point in enumerate(points):
                spec = self.point_spec(point)
                if not runner_digest:
                    # Index metadata: identical for every point of a run.
                    runner_digest = runner_spec_digest(spec["runner"])
                keys[index] = store_key(spec)
                hit = sweep_store.get(keys[index], point)
                if hit is None:
                    to_run.append((index, point))
                else:
                    records[index] = hit
                    if on_record is not None:
                        on_record(index, hit)

        def commit(index: int, record: SweepRecord) -> None:
            # Called as each simulation completes (not after the whole
            # grid), so a failing point or an interrupted run keeps every
            # already-finished point in the store: the retry resumes
            # instead of re-paying the full grid.
            records[index] = record
            if sweep_store is not None:
                sweep_store.put(keys[index], record,
                                runner_digest=runner_digest)
            if on_record is not None:
                on_record(index, record)

        if to_run:
            if pool is not None:
                pool.run_points(self.spec(), to_run, chunksize,
                                on_record=commit)
            elif workers <= 1 or len(to_run) <= 1:
                # workers<=1 degrades to the serial executor outright: a
                # clamped-to-1 spawn pool still pays the full spawn +
                # substrate-rebuild cost for zero parallelism.
                for index, point in to_run:
                    commit(index, self._run_point_guarded(point))
            else:
                self._run_parallel(to_run, workers, chunksize,
                                   on_record=commit)
        return SweepResult(records)  # type: ignore[arg-type]  # all slots filled

    def _resolve_workers(self, workers: Optional[int]) -> int:
        if workers is None:
            raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
            try:
                workers = int(raw) if raw else 0
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV_VAR}={raw!r} is not an integer") from None
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        return clamp_workers(workers)

    def _run_point_guarded(self, point: SweepPoint) -> SweepRecord:
        """Run one point, attaching its label to any failure."""
        try:
            return self._run_point(point)
        except SweepPointError:
            raise
        except Exception as exc:
            raise _point_error(point, exc) from exc

    def _run_parallel(self, indexed_points: List[Tuple[int, SweepPoint]],
                      workers: int, chunksize: Optional[int],
                      on_record: Optional[Callable[[int, SweepRecord], None]]
                      = None) -> List[Tuple[int, SweepRecord]]:
        """Fan indexed points out over a spawn pool, one pool per call.

        ``spawn`` (never ``fork``) is used on every platform: workers start
        from a clean interpreter and rebuild datasets/samplers from the
        pickled runner configuration, so no shared mutable substrate state
        can leak across processes and the execution model is identical on
        Linux/macOS/Windows.  (For worker reuse across calls, pass a
        :class:`repro.store.PersistentPool` to :meth:`run` instead.)

        The pool is a single-run :class:`repro.store.PersistentPool`, so
        both executors share one supervised implementation: a worker that
        dies mid-chunk is detected, the pool is rebuilt, and the lost
        points are re-run byte-identically instead of hanging the run.

        ``on_record`` is invoked per record in completion order while the
        pool drains (the store write-back hook), including before a
        failure is eventually raised.
        """
        # Imported here: repro.store.pool imports this module at top level.
        from repro.store.pool import PersistentPool

        workers = min(workers, len(indexed_points))
        pool = PersistentPool(workers, chunksize)
        try:
            return pool.run_points(self.spec(), indexed_points,
                                   on_record=on_record)
        finally:
            pool.close(drain=False)

    def _run_point(self, point: SweepPoint) -> SweepRecord:
        if point.is_hp_search:
            return self._run_hp_point(point)
        if point.is_distributed:
            return self._run_distributed_point(point)
        if point.is_failure:
            return self._run_failure_point(point)
        dataset, server = self._resolve(point)
        seed = self.point_seed(point)
        # dali-seq builds its own shuffle-buffer sampler (the storage-visible
        # order is what matters there); every other kind shares the memoised
        # random permutations of its per-point seed.
        sampler = (None if point.loader == "dali-seq"
                   else self._shared_sampler(dataset, seed))
        loader = build_loader(point.loader, dataset, server, point.model,
                              num_gpus=point.num_gpus, cores=point.cores,
                              gpu_prep=point.gpu_prep, seed=seed,
                              batch_size=point.batch_size, sampler=sampler)
        simulator = PipelineSimulator(point.model, server.gpu,
                                      queue_depth=self._queue_depth,
                                      fast_path=self._fast_path)
        run = TrainingRunStats()
        for stats in simulator.run_epochs(loader, point.num_epochs):
            run.add(stats)
        return SweepRecord(point=point, dataset_name=dataset.spec.name,
                           loader_name=loader.name, run=run)

    def _run_hp_point(self, point: SweepPoint) -> SweepRecord:
        dataset, server = self._resolve(point)
        scenario = HPSearchScenario(point.model, dataset, server,
                                    num_jobs=point.num_jobs,
                                    gpus_per_job=point.gpus_per_job,
                                    seed=self.point_seed(point),
                                    fast_path=self._fast_path)
        if point.loader == "hp-baseline":
            hp = scenario.run_baseline()
        else:
            hp = scenario.run_coordl()
        return SweepRecord(point=point, dataset_name=dataset.spec.name,
                           loader_name=hp.loader_name, hp=hp)

    def _run_distributed_point(self, point: SweepPoint) -> SweepRecord:
        dataset, server = self._resolve(point)
        # Homogeneous servers, as in the paper's distributed experiments.
        servers = [server for _ in range(point.num_servers)]
        training = DistributedTraining(point.model, dataset, servers,
                                       num_epochs=point.num_epochs,
                                       queue_depth=self._queue_depth,
                                       fast_path=self._fast_path)
        # Per-rank DistributedSampler shards (and the shard assignment of the
        # partitioned cache group) must derive from the point's stable seed
        # so repeated sweeps are reproducible and ranks agree on each epoch's
        # permutation (drawing disjoint slices of it, never identical ones).
        seed = self.point_seed(point)
        if point.loader == "dist-baseline":
            dist = training.run_baseline(gpu_prep=bool(point.gpu_prep),
                                         seed=seed)
        else:
            dist = training.run_coordl(gpu_prep=bool(point.gpu_prep),
                                       seed=seed)
        return SweepRecord(point=point, dataset_name=dataset.spec.name,
                           loader_name=dist.loader_name, dist=dist)

    def _run_failure_point(self, point: SweepPoint) -> SweepRecord:
        dataset, server = self._resolve(point)
        # The scenario seed doubles as the FailureDetector's replacement-
        # picking seed, so crash traces are a pure function of the point
        # spec — byte-identical at any worker count.
        scenario = FailureScenario(point.model, dataset, server,
                                   seed=self.point_seed(point),
                                   fast_path=self._fast_path)
        if point.loader == "coordl-crash":
            failure = scenario.run_crash(point.num_jobs, point.crash_schedule,
                                         point.num_epochs)
        elif point.loader == "coordl-elastic":
            failure = scenario.run_elastic(point.num_servers,
                                           point.membership_schedule,
                                           point.num_epochs)
        elif point.loader == "coordl-straggler":
            failure = scenario.run_straggler(point.num_servers,
                                             point.straggler_factors,
                                             point.num_epochs)
        else:
            failure = scenario.run_multitenant(point.tenants, point.num_jobs,
                                               point.num_epochs)
        return SweepRecord(point=point, dataset_name=dataset.spec.name,
                           loader_name=failure.loader_name, failure=failure)


def _point_error(point: SweepPoint, original: BaseException,
                 child_traceback: Optional[str] = None) -> SweepPointError:
    """Build the labelled sweep failure raised to the caller."""
    where = "in worker process" if child_traceback else "in process"
    error = SweepPointError(
        f"sweep point [{point.describe()}] failed {where}: "
        f"{type(original).__name__}: {original}")
    error.point_label = point.describe()
    error.child_traceback = child_traceback
    return error


def _raise_lowest_failure(failures: Dict[int, tuple],
                          indexed_points: List[Tuple[int, SweepPoint]]) -> None:
    """Raise the pooled failure a serial run would have raised.

    Pools drain everything before raising: ``imap_unordered`` yields in
    completion order, so raising on the first failure *seen* would name a
    scheduling-dependent point.  Raising for the lowest failing input
    index reports exactly the point a serial run would have raised for —
    shared by the per-call pool here and :class:`repro.store.PersistentPool`
    so the two executors cannot drift.
    """
    index = min(failures)
    exc, child_traceback = failures[index]
    raise _point_error(dict(indexed_points)[index], exc, child_traceback) from exc


def _execute_point_task(runner: SweepRunner, index: int, point: SweepPoint):
    """Simulate one indexed point; never raise across a pool pipe.

    Failures travel back as ``(index, None, (exception, traceback_text))``
    so the parent can re-raise the *original* exception chained under a
    labelled :class:`SweepPointError` instead of a bare multiprocessing
    traceback.  Exceptions that cannot survive pickling are substituted
    with a :class:`SimulationError` carrying their repr.  Shared by both
    pool executors' worker-side task functions.
    """
    try:
        return index, runner._run_point(point), None
    except Exception as exc:
        text = traceback.format_exc()
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = SimulationError(
                f"worker exception could not be pickled: {exc!r}")
        return index, None, (exc, text)


# Worker-pool plumbing lives in repro.store.pool: both the per-call path
# (via a single-run PersistentPool) and the long-lived pool share one
# supervised executor and one worker-side task protocol
# (_execute_point_task above), so the executors cannot drift.
