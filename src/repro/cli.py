"""Command-line interface.

Provides the operations a practitioner would reach for first, without writing
any Python:

* ``python -m repro list-experiments`` — every reproduced table/figure.
* ``python -m repro run-experiment fig9a --scale 0.01`` — regenerate one of
  them and print the table.
* ``python -m repro profile resnet18 openimages config-ssd-v100 --cache 0.65``
  — DS-Analyzer profile + bottleneck classification + cache recommendation.
* ``python -m repro report -o EXPERIMENTS.md`` — regenerate the full
  paper-vs-measured report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.cluster.configs import get_server_config
from repro.compute.model_zoo import get_model
from repro.datasets.catalog import get_dataset_spec
from repro.datasets.dataset import SyntheticDataset
from repro.dsanalyzer.predictor import DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.dsanalyzer.report import format_recommendation, summarize
from repro.dsanalyzer.whatif import optimal_cache_fraction
from repro.experiments import registry
from repro.experiments.base import SWEEP_SCALE
from repro.experiments.report_generator import generate


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analyzing and Mitigating Data Stalls in "
                    "DNN Training' (DS-Analyzer + CoorDL).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="list every reproduced table/figure")

    run = sub.add_parser("run-experiment", help="regenerate one table/figure")
    run.add_argument("experiment_id", help="id from list-experiments, e.g. fig9a")
    run.add_argument("--scale", type=float, default=SWEEP_SCALE,
                     help="dataset scale fraction (default 1/100)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes for the experiment's sweep grid "
                          "(default: REPRO_SWEEP_WORKERS or serial; results "
                          "are identical for every value)")

    profile = sub.add_parser("profile", help="DS-Analyzer profile for a model")
    profile.add_argument("model", help="model name, e.g. resnet18")
    profile.add_argument("dataset", help="dataset name, e.g. openimages")
    profile.add_argument("server", help="server config, e.g. config-ssd-v100")
    profile.add_argument("--cache", type=float, default=0.35,
                         help="cached fraction of the dataset (default 0.35)")
    profile.add_argument("--scale", type=float, default=SWEEP_SCALE,
                         help="dataset scale fraction (default 1/100)")
    profile.add_argument("--gpu-prep", action="store_true",
                         help="profile with DALI GPU-assisted prep")

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument("--scale", type=float, default=SWEEP_SCALE)
    report.add_argument("--workers", type=int, default=None,
                        help="worker processes for the sweep-backed experiments")
    return parser


def _cmd_list_experiments() -> int:
    for experiment_id in registry.experiment_ids():
        print(experiment_id)
    return 0


def _cmd_run_experiment(experiment_id: str, scale: float,
                        workers: Optional[int]) -> int:
    kwargs = {} if experiment_id == "fig8" else {"scale": scale}
    if workers is not None:
        if not registry.accepts_kwarg(experiment_id, "workers"):
            print(f"{experiment_id} has no sweep grid to parallelise; "
                  "ignoring --workers", file=sys.stderr)
        else:
            kwargs["workers"] = workers
    result = registry.run_experiment(experiment_id, **kwargs)
    print(result.format_table())
    return 0


def _cmd_profile(model_name: str, dataset_name: str, server_name: str,
                 cache_fraction: float, scale: float, gpu_prep: bool) -> int:
    model = get_model(model_name)
    dataset = SyntheticDataset(get_dataset_spec(dataset_name), scale=scale)
    server = get_server_config(server_name)
    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=gpu_prep)
    predictor = DataStallPredictor(profiler.profile())
    print(summarize(predictor, cache_fraction))
    print()
    print(format_recommendation(optimal_cache_fraction(predictor, dataset)))
    return 0


def _cmd_report(output: str, scale: float, workers: Optional[int]) -> int:
    generate(output, scale, workers=workers)
    print(f"wrote {output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-experiments":
        return _cmd_list_experiments()
    if args.command == "run-experiment":
        return _cmd_run_experiment(args.experiment_id, args.scale, args.workers)
    if args.command == "profile":
        return _cmd_profile(args.model, args.dataset, args.server,
                            args.cache, args.scale, args.gpu_prep)
    if args.command == "report":
        return _cmd_report(args.output, args.scale, args.workers)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
