"""Figure 9(e) — HP search with multi-GPU jobs (AlexNet on OpenImages).

The eight GPUs of one server can be split into 8x1-GPU, 4x2-GPU, 2x4-GPU or
1x8-GPU HP-search jobs.  With a single job the benefit of CoorDL comes from
the MinIO cache; with several concurrent jobs the dominant benefit is
coordinated prep, and the gain grows with the job count because the baseline
divides the CPU cores ever more thinly.  Every job shape is a
:class:`~repro.sim.sweep.SweepPoint`: HP-search points for the multi-job
shapes, plain training points (DALI-shuffle vs CoorDL on the job's GPUs) for
the single-job shape, which has nothing to coordinate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.units import speedup
from repro.store import PersistentPool, StoreArg

DEFAULT_CONFIGS: Tuple[Tuple[int, int], ...] = ((8, 1), (4, 2), (2, 4), (1, 8))


def run(scale: float = SWEEP_SCALE, model: ModelSpec = ALEXNET,
        dataset_name: str = "openimages", cache_fraction: float = 0.65,
        job_configs: Sequence[Tuple[int, int]] = DEFAULT_CONFIGS,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the job-shape sweep of Fig. 9(e)."""
    points: List[SweepPoint] = []
    for num_jobs, gpus_per_job in job_configs:
        if num_jobs == 1:
            # A single job has nothing to coordinate: compare the full-server
            # training pipelines directly (MinIO vs page cache).
            points.extend(
                SweepPoint(model=model, loader=kind, dataset=dataset_name,
                           cache_fraction=cache_fraction, num_gpus=gpus_per_job)
                for kind in ("dali-shuffle", "coordl"))
        else:
            points.extend(
                SweepPoint(model=model, loader=kind, dataset=dataset_name,
                           cache_fraction=cache_fraction,
                           num_jobs=num_jobs, gpus_per_job=gpus_per_job)
                for kind in ("hp-baseline", "hp-coordl"))
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    sweep = runner.run(points, workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig9e",
        title="Fig. 9(e) — HP search with multi-GPU jobs (AlexNet/OpenImages, "
              "Config-SSD-V100)",
        columns=["num_jobs", "gpus_per_job", "dali_epoch_s", "coordl_epoch_s", "speedup"],
        notes=["single-job row isolates the MinIO benefit; multi-job rows add "
               "coordinated prep"],
    )
    for num_jobs, gpus_per_job in job_configs:
        if num_jobs == 1:
            dali_t = sweep.one(loader="dali-shuffle",
                               num_gpus=gpus_per_job).steady.epoch_time_s
            coordl_t = sweep.one(loader="coordl",
                                 num_gpus=gpus_per_job).steady.epoch_time_s
        else:
            dali_t = sweep.one(loader="hp-baseline", num_jobs=num_jobs,
                               gpus_per_job=gpus_per_job).hp.epoch_time_s
            coordl_t = sweep.one(loader="hp-coordl", num_jobs=num_jobs,
                                 gpus_per_job=gpus_per_job).hp.epoch_time_s
        result.add_row(
            num_jobs=num_jobs,
            gpus_per_job=gpus_per_job,
            dali_epoch_s=dali_t,
            coordl_epoch_s=coordl_t,
            speedup=speedup(dali_t, coordl_t),
        )
    return result
