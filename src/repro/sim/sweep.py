"""Parameter-sweep runner over the pipelined epoch simulator.

Every figure/table reproduction walks a grid of configurations — cache
sizes (Fig. 3), prep cores (Fig. 4), models (Figs. 6/9d), predictor
validation points (Tab. 5) — and each experiment module used to hand-roll
its own loops over :class:`~repro.sim.single_server.SingleServerTraining`
or :class:`~repro.sim.hp_search.HPSearchScenario`.  :class:`SweepRunner`
replaces those loops with one subsystem that

* expands a grid of (model, loader, cache size, cores, batch size)
  into :class:`SweepPoint`\\ s,
* **shares** dataset materialisation and per-epoch sampler permutations
  across all points of the same (dataset, seed) pair,
* runs every point through the simulator's vectorised fast path
  (:meth:`repro.sim.engine.PipelineSimulator.collect_batch_times`), and
* returns a tidy :class:`SweepResult` the experiment modules reduce into
  their :class:`~repro.experiments.base.ExperimentResult` tables.

Three point kinds are supported: single-server training sweeps
(``loader`` in :data:`~repro.sim.single_server.LOADER_KINDS`), HP-search
scenario sweeps (``loader`` in :data:`HP_SEARCH_KINDS`, which run
:class:`~repro.sim.hp_search.HPSearchScenario` per point), and multi-server
distributed sweeps (``loader`` in :data:`DISTRIBUTED_KINDS`, which run
:class:`~repro.sim.distributed.DistributedTraining` per point).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.datasets.catalog import get_dataset_spec
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import CachingSampler, RandomSampler, Sampler
from repro.exceptions import ConfigurationError
from repro.pipeline.stats import EpochStats, TrainingRunStats
from repro.sim.distributed import DistributedEpoch, DistributedResult, DistributedTraining
from repro.sim.engine import PipelineSimulator
from repro.sim.hp_search import HPSearchResult, HPSearchScenario
from repro.sim.single_server import LOADER_KINDS, build_loader

#: Sweep-point kinds simulated through :class:`HPSearchScenario` instead of
#: the single-server epoch pipeline.
HP_SEARCH_KINDS = ("hp-baseline", "hp-coordl")

#: Sweep-point kinds simulated through :class:`DistributedTraining`
#: (``cache_fraction`` / ``cache_bytes`` are per-server budgets there).
DISTRIBUTED_KINDS = ("dist-baseline", "dist-coordl")


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep grid.

    Attributes:
        model: DNN trained at this point.
        loader: One of :data:`~repro.sim.single_server.LOADER_KINDS` for
            single-server training points, one of :data:`HP_SEARCH_KINDS`
            for HP-search scenario points, or one of
            :data:`DISTRIBUTED_KINDS` for multi-server points.
        dataset: Catalog name of the dataset; ``None`` uses the model's
            ``default_dataset`` (the Fig. 6/9 per-model convention).
        cache_fraction: Cache budget as a fraction of the dataset's bytes
            (may exceed 1.0 for fully-cached configurations); mutually
            exclusive with ``cache_bytes``.  ``None`` keeps the server's
            default budget.  For distributed points this is the *per-server*
            budget (Fig. 9b's convention).
        cache_bytes: Absolute cache budget override.
        cores: Physical prep cores for the job (``None``: all).
        num_gpus: GPUs used by the job (``None``: all on the server).
        batch_size: Explicit per-iteration batch size (``None``: derived
            from the model, clamped for scaled datasets).
        gpu_prep: Force GPU prep on/off (``None``: faster variant; treated
            as off for distributed points, matching Fig. 9b).
        num_epochs: Epochs to simulate (first is the cold-cache warm-up).
        num_jobs / gpus_per_job: HP-search points only.
        num_servers: Distributed points only (homogeneous servers).
        label: Free-form tag carried through to the record.
    """

    model: ModelSpec
    loader: str = "coordl"
    dataset: Optional[str] = None
    cache_fraction: Optional[float] = None
    cache_bytes: Optional[float] = None
    cores: Optional[float] = None
    num_gpus: Optional[int] = None
    batch_size: Optional[int] = None
    gpu_prep: Optional[bool] = None
    num_epochs: int = 2
    num_jobs: int = 8
    gpus_per_job: int = 1
    num_servers: int = 2
    label: str = ""

    def __post_init__(self) -> None:
        known = LOADER_KINDS + HP_SEARCH_KINDS + DISTRIBUTED_KINDS
        if self.loader not in known:
            raise ConfigurationError(
                f"unknown sweep loader {self.loader!r}; expected one of {known}")
        if self.cache_fraction is not None and self.cache_bytes is not None:
            raise ConfigurationError(
                "give cache_fraction or cache_bytes, not both")
        if not self.is_hp_search and self.num_epochs < 2:
            raise ConfigurationError(
                "need at least two epochs (warm-up + one measured epoch)")
        if self.is_distributed and self.num_servers < 2:
            raise ConfigurationError(
                "distributed sweep points need at least two servers")
        # Fields that a point kind does not plumb through are rejected rather
        # than silently ignored: a plausible-looking result simulated without
        # the requested knob is worse than an error.
        if self.is_hp_search or self.is_distributed:
            inapplicable = [("batch_size", self.batch_size),
                            ("cores", self.cores),
                            ("num_gpus", self.num_gpus)]
            if self.is_hp_search:
                inapplicable.append(("gpu_prep", self.gpu_prep))
            bad = [name for name, value in inapplicable if value is not None]
            if bad:
                raise ConfigurationError(
                    f"{self.loader!r} sweep points do not support {bad} "
                    "(training-point-only fields)")
        else:
            defaults = (("num_jobs", self.num_jobs, 8),
                        ("gpus_per_job", self.gpus_per_job, 1),
                        ("num_servers", self.num_servers, 2))
            bad = [name for name, value, default in defaults if value != default]
            if bad:
                raise ConfigurationError(
                    f"training sweep points do not support {bad} "
                    "(HP-search/distributed-point-only fields)")

    @property
    def is_hp_search(self) -> bool:
        """Whether this point runs through the HP-search scenario."""
        return self.loader in HP_SEARCH_KINDS

    @property
    def is_distributed(self) -> bool:
        """Whether this point runs through the distributed scenario."""
        return self.loader in DISTRIBUTED_KINDS


@dataclass
class SweepRecord:
    """Outcome of one sweep point.

    Training points carry the full multi-epoch ``run``; HP-search points
    carry the scenario's steady-state ``hp`` result; distributed points
    carry the multi-epoch, multi-server ``dist`` result.
    """

    point: SweepPoint
    dataset_name: str
    loader_name: str
    run: Optional[TrainingRunStats] = None
    hp: Optional[HPSearchResult] = None
    dist: Optional[DistributedResult] = None

    @property
    def steady(self) -> EpochStats:
        """Representative steady-state epoch (training points)."""
        if self.run is None:
            raise ConfigurationError(
                f"sweep point {self.point.loader!r} has no epoch run "
                "(HP-search points expose .hp, distributed points .dist)")
        return self.run.steady_epoch()

    @property
    def dist_steady(self) -> DistributedEpoch:
        """Representative steady-state job epoch (distributed points)."""
        if self.dist is None:
            raise ConfigurationError(
                f"sweep point {self.point.loader!r} has no distributed run")
        return self.dist.steady_epochs()[-1]

    def row(self) -> Dict[str, Any]:
        """Tidy-table row: the point's configuration plus key metrics."""
        values: Dict[str, Any] = {
            "model": self.point.model.name,
            "loader": self.point.loader,
            "loader_name": self.loader_name,
            "dataset": self.dataset_name,
            "cache_fraction": self.point.cache_fraction,
            "cores": self.point.cores,
            "batch_size": self.point.batch_size,
            "label": self.point.label,
        }
        if self.hp is not None:
            values.update(
                epoch_time_s=self.hp.epoch_time_s,
                throughput=self.hp.per_job_throughput,
                disk_bytes=self.hp.disk_bytes_per_epoch,
                cache_miss_ratio=self.hp.cache_miss_ratio,
            )
        elif self.dist is not None:
            steady = self.dist_steady
            values.update(
                epoch_time_s=steady.epoch_time_s,
                throughput=steady.throughput,
                disk_bytes=steady.total_disk_bytes,
                remote_bytes=steady.total_remote_bytes,
            )
        else:
            steady = self.steady
            values.update(
                epoch_time_s=steady.epoch_time_s,
                throughput=steady.throughput,
                fetch_stall_s=steady.fetch_stall_s,
                prep_stall_s=steady.prep_stall_s,
                disk_bytes=steady.io.disk_bytes,
                cache_miss_ratio=steady.cache_miss_ratio,
            )
        return values


class SweepResult:
    """Tidy collection of sweep records with config-based selection."""

    def __init__(self, records: Sequence[SweepRecord]) -> None:
        self._records = list(records)

    def __iter__(self) -> Iterator[SweepRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[SweepRecord]:
        """All records, in sweep order."""
        return list(self._records)

    def filter(self, **attrs: Any) -> "SweepResult":
        """Records whose :class:`SweepPoint` matches every given attribute."""
        point_fields = {f.name for f in fields(SweepPoint)}
        unknown = set(attrs) - point_fields
        if unknown:
            raise ConfigurationError(f"unknown sweep-point fields {sorted(unknown)}")
        kept = [r for r in self._records
                if all(getattr(r.point, k) == v for k, v in attrs.items())]
        return SweepResult(kept)

    def one(self, **attrs: Any) -> SweepRecord:
        """The unique record matching the given point attributes."""
        matches = self.filter(**attrs)
        if len(matches) != 1:
            raise ConfigurationError(
                f"expected exactly one record for {attrs}, found {len(matches)}")
        return matches.records[0]

    def rows(self) -> List[Dict[str, Any]]:
        """One tidy dict per record (config columns + key metrics)."""
        return [record.row() for record in self._records]


class SweepRunner:
    """Run a grid of simulation configurations with shared substrates.

    Args:
        server_factory: Callable building the server model, accepting a
            ``cache_bytes`` keyword (e.g.
            :func:`repro.cluster.configs.config_ssd_v100`).
        scale: Dataset scale applied to every point (experiments pass their
            usual ``SWEEP_SCALE``/``DEFAULT_SCALE``).
        seed: Seed for dataset materialisation and samplers.
        queue_depth: Prefetch queue depth of the simulated pipeline.
        fast_path: Allow the vectorised epoch collection (disable to force
            the per-batch reference path, e.g. for benchmarking it).
    """

    def __init__(self, server_factory: Callable[..., ServerConfig], *,
                 scale: float = 1.0, seed: int = 0, queue_depth: int = 4,
                 fast_path: bool = True) -> None:
        self._server_factory = server_factory
        self._scale = scale
        self._seed = seed
        self._queue_depth = queue_depth
        self._fast_path = fast_path
        self._datasets: Dict[str, SyntheticDataset] = {}
        self._samplers: Dict[int, Sampler] = {}

    @staticmethod
    def grid(models: Sequence[ModelSpec], loaders: Sequence[str],
             cache_fractions: Sequence[Optional[float]] = (None,),
             cores: Sequence[Optional[float]] = (None,),
             batch_sizes: Sequence[Optional[int]] = (None,),
             **common: Any) -> List[SweepPoint]:
        """Cross-product grid of sweep points.

        ``common`` keyword arguments (``dataset``, ``num_epochs``,
        ``gpu_prep``, ...) are applied to every point.
        """
        return [
            SweepPoint(model=model, loader=loader, cache_fraction=fraction,
                       cores=core, batch_size=batch, **common)
            for model, loader, fraction, core, batch in itertools.product(
                models, loaders, cache_fractions, cores, batch_sizes)
        ]

    # -- shared substrate construction --------------------------------------

    def dataset(self, name: str) -> SyntheticDataset:
        """Materialise (once) the scaled dataset of the given catalog name."""
        cached = self._datasets.get(name)
        if cached is None:
            cached = SyntheticDataset(get_dataset_spec(name), seed=self._seed,
                                      scale=self._scale)
            self._datasets[name] = cached
        return cached

    def _shared_sampler(self, dataset: SyntheticDataset) -> Sampler:
        """One memoised random sampler per dataset size (all points share)."""
        sampler = self._samplers.get(len(dataset))
        if sampler is None:
            sampler = CachingSampler(RandomSampler(len(dataset), seed=self._seed))
            self._samplers[len(dataset)] = sampler
        return sampler

    def _resolve(self, point: SweepPoint) -> tuple:
        dataset = self.dataset(point.dataset or point.model.default_dataset)
        cache_bytes = point.cache_bytes
        if point.cache_fraction is not None:
            cache_bytes = dataset.total_bytes * point.cache_fraction
        if cache_bytes is not None:
            server = self._server_factory(cache_bytes=cache_bytes)
        else:
            server = self._server_factory()
        return dataset, server

    # -- execution ----------------------------------------------------------

    def run(self, points: Iterable[SweepPoint]) -> SweepResult:
        """Simulate every point and return the tidy result table."""
        records = [self._run_point(point) for point in points]
        return SweepResult(records)

    def _run_point(self, point: SweepPoint) -> SweepRecord:
        if point.is_hp_search:
            return self._run_hp_point(point)
        if point.is_distributed:
            return self._run_distributed_point(point)
        dataset, server = self._resolve(point)
        # dali-seq builds its own shuffle-buffer sampler (the storage-visible
        # order is what matters there); every other kind shares the memoised
        # random permutations.
        sampler = None if point.loader == "dali-seq" else self._shared_sampler(dataset)
        loader = build_loader(point.loader, dataset, server, point.model,
                              num_gpus=point.num_gpus, cores=point.cores,
                              gpu_prep=point.gpu_prep, seed=self._seed,
                              batch_size=point.batch_size, sampler=sampler)
        simulator = PipelineSimulator(point.model, server.gpu,
                                      queue_depth=self._queue_depth,
                                      fast_path=self._fast_path)
        run = TrainingRunStats()
        for stats in simulator.run_epochs(loader, point.num_epochs):
            run.add(stats)
        return SweepRecord(point=point, dataset_name=dataset.spec.name,
                           loader_name=loader.name, run=run)

    def _run_hp_point(self, point: SweepPoint) -> SweepRecord:
        dataset, server = self._resolve(point)
        scenario = HPSearchScenario(point.model, dataset, server,
                                    num_jobs=point.num_jobs,
                                    gpus_per_job=point.gpus_per_job,
                                    seed=self._seed,
                                    fast_path=self._fast_path)
        if point.loader == "hp-baseline":
            hp = scenario.run_baseline()
        else:
            hp = scenario.run_coordl()
        return SweepRecord(point=point, dataset_name=dataset.spec.name,
                           loader_name=hp.loader_name, hp=hp)

    def _run_distributed_point(self, point: SweepPoint) -> SweepRecord:
        dataset, server = self._resolve(point)
        # Homogeneous servers, as in the paper's distributed experiments.
        servers = [server for _ in range(point.num_servers)]
        training = DistributedTraining(point.model, dataset, servers,
                                       num_epochs=point.num_epochs,
                                       queue_depth=self._queue_depth,
                                       fast_path=self._fast_path)
        # Per-rank DistributedSampler shards (and the shard assignment of the
        # partitioned cache group) must derive from the runner's shared seed
        # so repeated sweeps are reproducible and ranks agree on each epoch's
        # permutation (drawing disjoint slices of it, never identical ones).
        if point.loader == "dist-baseline":
            dist = training.run_baseline(gpu_prep=bool(point.gpu_prep),
                                         seed=self._seed)
        else:
            dist = training.run_coordl(gpu_prep=bool(point.gpu_prep),
                                       seed=self._seed)
        return SweepRecord(point=point, dataset_name=dataset.spec.name,
                           loader_name=dist.loader_name, dist=dist)
