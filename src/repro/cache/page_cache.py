"""OS page-cache model.

DNN training frameworks rely on the kernel page cache for caching raw training
data (Sec. 3.3.1).  Linux's replacement policy is not a strict LRU but a
*segmented* LRU with two lists (Gorman [33], the reference the paper cites):

* an **inactive list** that newly-read pages enter and are evicted from, and
* an **active list** that pages are promoted to when they are referenced
  again while resident; active pages are protected from streaming evictions
  and only demoted back when the active list grows past its target share.

Two behaviours the paper highlights emerge from driving this structure with
DNN access streams:

* **Thrashing under single-pass random access.**  Every item is accessed
  exactly once per epoch, so by the time an item is re-requested an entire
  epoch of insertions has pushed it toward the inactive tail; the effective
  hit-rate sits well below the cache-capacity fraction (the paper measures
  roughly 20 % extra misses at a 35 % cache, ~50 % misses at a 65 % cache).
* **A pathological case for sequential scans** (DALI-seq, TFRecords): the
  scan wraps around to pages that were just evicted, so hits collapse toward
  zero once the dataset exceeds the cache.

An "effective" cache for DNN training would instead deliver exactly
capacity-many hits per epoch — that is MinIO (:mod:`repro.cache.minio`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

import numpy as np

from repro.cache.base import Cache
from repro.cache.warm_kernel import simulate_segmented_lru, warm_kernel_enabled
from repro.exceptions import ConfigurationError


class PageCache(Cache):
    """Server-wide page cache shared by all training processes.

    Args:
        capacity_bytes: DRAM available for caching training data (the paper's
            servers dedicate ~400 of 500 GiB to the dataset cache).
        page_bytes: Allocation granularity.  Items are rounded up to whole
            pages, matching the kernel's 4 KiB pages.
        active_target_fraction: Maximum share of the capacity the active
            (protected) list may occupy before pages are demoted; Linux
            balances the two lists around roughly half the cache.
    """

    def __init__(self, capacity_bytes: float, page_bytes: float = 4096.0,
                 active_target_fraction: float = 0.5) -> None:
        super().__init__(capacity_bytes)
        if page_bytes <= 0:
            raise ConfigurationError("page size must be positive")
        if not 0.0 <= active_target_fraction <= 1.0:
            raise ConfigurationError("active-list target must be in [0, 1]")
        self._page_bytes = page_bytes
        self._active_target = active_target_fraction
        self._inactive: "OrderedDict[int, float]" = OrderedDict()
        self._active: "OrderedDict[int, float]" = OrderedDict()
        self._inactive_bytes = 0.0
        self._active_bytes = 0.0
        self._pressure_evictions = 0
        self._explicit_evictions = 0

    # -- bookkeeping helpers -------------------------------------------------

    @property
    def page_bytes(self) -> float:
        """Cache allocation granularity."""
        return self._page_bytes

    @property
    def used_bytes(self) -> float:
        return self._inactive_bytes + self._active_bytes

    @property
    def active_bytes(self) -> float:
        """Bytes on the protected (active) list."""
        return self._active_bytes

    @property
    def inactive_bytes(self) -> float:
        """Bytes on the streaming (inactive) list."""
        return self._inactive_bytes

    @property
    def evictions(self) -> int:
        """Items evicted by capacity pressure so far (thrashing indicator).

        Explicit ``evict()`` drops (``posix_fadvise(DONTNEED)`` — a policy
        *choice*, not thrashing) are counted separately in
        :attr:`explicit_evictions`.
        """
        return self._pressure_evictions

    @property
    def pressure_evictions(self) -> int:
        """Items evicted because an admission needed room (= ``evictions``)."""
        return self._pressure_evictions

    @property
    def explicit_evictions(self) -> int:
        """Items dropped through :meth:`evict` (fadvise-style invalidation)."""
        return self._explicit_evictions

    def _rounded(self, size_bytes: float) -> float:
        pages = max(1, int(-(-size_bytes // self._page_bytes)))  # ceil division
        return pages * self._page_bytes

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._inactive or item_id in self._active

    def cached_items(self) -> Iterable[int]:
        return list(self._inactive.keys()) + list(self._active.keys())

    # -- list mechanics ------------------------------------------------------

    def _promote(self, item_id: int) -> None:
        size = self._inactive.pop(item_id)
        self._inactive_bytes -= size
        self._active[item_id] = size
        self._active_bytes += size
        self._rebalance()

    def _rebalance(self) -> None:
        """Demote cold active pages when the active list exceeds its target."""
        limit = self._capacity * self._active_target
        while self._active and self._active_bytes > limit:
            item_id, size = self._active.popitem(last=False)
            self._active_bytes -= size
            self._inactive[item_id] = size
            self._inactive_bytes += size

    def _evict_until(self, needed_bytes: float) -> None:
        while self.used_bytes + needed_bytes > self._capacity:
            if self._inactive:
                _item, size = self._inactive.popitem(last=False)
                self._inactive_bytes -= size
            elif self._active:
                # Inactive list exhausted: reclaim presses on the active list.
                _item, size = self._active.popitem(last=False)
                self._active_bytes -= size
            else:
                break
            self._pressure_evictions += 1

    # -- Cache interface -----------------------------------------------------

    def lookup(self, item_id: int) -> bool:
        if item_id in self._active:
            size = self._active[item_id]
            self._active.move_to_end(item_id)
            self._stats.record_hit(size)
            return True
        if item_id in self._inactive:
            size = self._inactive[item_id]
            self._stats.record_hit(size)
            # Second reference while resident: promote to the active list.
            self._promote(item_id)
            return True
        self._stats.record_miss()
        return False

    def admit(self, item_id: int, size_bytes: float) -> bool:
        # The kernel caches everything it reads; eviction pressure falls on
        # the inactive tail first.
        size = self._rounded(size_bytes)
        if size > self._capacity:
            self._stats.rejected += 1
            return False
        if item_id in self._inactive or item_id in self._active:
            return True
        self._evict_until(size)
        self._inactive[item_id] = size
        self._inactive_bytes += size
        self._stats.insertions += 1
        return True

    def bulk_epoch_hits(self, item_ids: np.ndarray,
                        sizes: np.ndarray) -> Optional[np.ndarray]:
        """One single-pass epoch of distinct accesses, in bulk.

        The *cold* trajectory (empty cache) is closed-form: distinct items
        are never re-referenced within the epoch, so every access misses,
        nothing is promoted to the active list, and FIFO byte eviction leaves
        exactly the maximal suffix of the admitted stream whose rounded sizes
        fit in the capacity.  A *warm* page cache has no closed form — hits
        promote pages and reshape both lists — so the warm branch replays
        the state machine through the bulk kernel
        (:meth:`bulk_stream_hits`), falling back to the per-item
        ``lookup``/``admit`` reference walk when the kernel declines; either
        way the caller derives timings and I/O accounting from the returned
        mask vectorised.
        """
        if self._inactive or self._active:
            hits = self.bulk_stream_hits(item_ids, sizes)
            if hits is not None:
                return hits
            return self._warm_epoch_hits(item_ids, sizes)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        rounded = np.maximum(np.ceil(sizes / self._page_bytes), 1.0) * self._page_bytes
        fits = rounded <= self._capacity

        self._stats.misses += int(item_ids.size)
        self._stats.rejected += int((~fits).sum())
        inserted_ids = item_ids[fits]
        inserted_sizes = rounded[fits]
        self._stats.insertions += int(inserted_ids.size)

        # FIFO byte eviction keeps the maximal suffix of the insertion order
        # whose total fits; everything inserted before it was evicted.
        suffix_bytes = np.cumsum(inserted_sizes[::-1])
        keep = int(np.searchsorted(suffix_bytes, self._capacity, side="right"))
        self._pressure_evictions += int(inserted_ids.size) - keep
        if keep:
            for item_id, size in zip(inserted_ids[-keep:].tolist(),
                                     inserted_sizes[-keep:].tolist()):
                self._inactive[item_id] = size
            self._inactive_bytes = float(inserted_sizes[-keep:].sum())
        return np.zeros(item_ids.size, dtype=bool)

    def bulk_saturating_hits(self, item_ids: np.ndarray,
                             sizes: np.ndarray) -> Optional[np.ndarray]:
        """A multi-pass access stream in bulk, when eviction is impossible.

        Unlike :meth:`bulk_epoch_hits` the stream may revisit items (the
        HP-search baseline interleaves several jobs' epochs over one shared
        page cache).  The trajectory is analytic exactly when the cache can
        never evict during the stream: every distinct accessed item fits in
        the capacity alongside whatever resident bytes lie outside the
        accessed set.  Then an access hits iff its item is already resident
        or occurred earlier in the stream, every first-touch miss is
        admitted, and the hit/miss/insertion counters and residency after
        this call equal the per-item ``lookup`` + ``admit`` walk.

        The active/inactive list *ordering* is not reproduced (promotions
        are skipped): ordering is only observable through future evictions,
        which the no-eviction precondition rules out for as long as later
        accesses stay within ``item_ids``.  Callers must confine the cache
        to this item universe afterwards (the HP-search scenario does — one
        page cache per dataset and run).

        Returns ``None`` without side effects when the no-eviction
        precondition does not hold and the caller must walk item by item.
        """
        item_ids = np.asarray(item_ids, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        if item_ids.size == 0:
            return np.zeros(0, dtype=bool)
        rounded = np.maximum(np.ceil(sizes / self._page_bytes), 1.0) * self._page_bytes
        distinct, first_pos, inverse = np.unique(item_ids, return_index=True,
                                                 return_inverse=True)
        # Cheap decline for thrashing streams: the newly admitted bytes are
        # at least the distinct rounded footprint minus what is already
        # resident, so once that footprint alone exceeds the capacity (plus
        # one page of float slack) the no-eviction precondition cannot hold
        # and the per-distinct residency probe below would be wasted work.
        if float(rounded[first_pos].sum()) > self._capacity + self._page_bytes:
            return None
        resident = np.fromiter((item in self for item in distinct.tolist()),
                               dtype=bool, count=distinct.size)
        stored = rounded[first_pos].copy()
        for i in np.flatnonzero(resident).tolist():
            item = int(distinct[i])
            stored[i] = self._inactive.get(item) or self._active[item]
        new_rounded = rounded[first_pos[~resident]]
        # No eviction can ever trigger iff everything admitted still fits on
        # top of what is resident (re-admissions of resident items are no-ops,
        # and each new item individually fits because the total does).
        if self.used_bytes + float(new_rounded.sum()) > self._capacity:
            return None

        miss = np.zeros(item_ids.size, dtype=bool)
        miss[first_pos[~resident]] = True
        self._stats.misses += int(miss.sum())
        self._stats.hits += int(item_ids.size - miss.sum())
        per_access_stored = stored[inverse]
        self._stats.hit_bytes += float(per_access_stored[~miss].sum())
        self._stats.insertions += int((~resident).sum())
        new_first = np.sort(first_pos[~resident])
        for pos in new_first.tolist():
            self._inactive[int(item_ids[pos])] = float(rounded[pos])
        self._inactive_bytes += float(rounded[new_first].sum())
        return ~miss

    def bulk_stream_hits(self, item_ids: np.ndarray,
                         sizes: np.ndarray) -> Optional[np.ndarray]:
        """Any warm/thrashing access stream in bulk, exactly.

        The general entry of the fast-path lattice: the stream may revisit
        items (the HP-search baseline interleaves several jobs' epochs over
        one shared page cache) and the cache may start warm, below the
        working set, and evicting on every admission — the segmented-LRU
        thrashing regime of Sec. 3.3.1.  The whole stream is replayed
        through :func:`repro.cache.warm_kernel.simulate_segmented_lru`,
        which reproduces the per-item ``lookup`` + ``admit`` walk bit for
        bit: hit mask, every stats counter (including ``hit_bytes``), the
        pressure-eviction count, byte occupancies and the exact order of
        both lists (observable through future evictions and demotions).

        Every miss is admitted, as the kernel page cache does — callers
        with an admission *policy* must walk item by item.  Returns ``None``
        without side effects when the kernel is disabled
        (``REPRO_WARM_KERNEL=0``) or cannot certify float-exactness
        (degenerate page sizes, stored sizes that are not page multiples);
        side effects are all-or-nothing, as for the other bulk paths.
        """
        if not warm_kernel_enabled():
            return None
        result = simulate_segmented_lru(
            item_ids, sizes,
            capacity_bytes=self._capacity,
            page_bytes=self._page_bytes,
            active_limit_bytes=self._capacity * self._active_target,
            inactive=self._inactive, active=self._active,
            inactive_bytes=self._inactive_bytes,
            active_bytes=self._active_bytes,
            prior_hit_bytes=self._stats.hit_bytes)
        if result is None:
            return None
        page = self._page_bytes
        in_ids, in_pages = result.inactive
        act_ids, act_pages = result.active
        self._inactive = OrderedDict(
            (item, pages * page)
            for item, pages in zip(in_ids.tolist(), in_pages.tolist()))
        self._active = OrderedDict(
            (item, pages * page)
            for item, pages in zip(act_ids.tolist(), act_pages.tolist()))
        self._inactive_bytes = float(int(in_pages.sum())) * page
        self._active_bytes = float(int(act_pages.sum())) * page
        self._pressure_evictions += result.pressure_evictions
        self._stats.hits += result.hits
        self._stats.misses += result.misses
        self._stats.insertions += result.insertions
        self._stats.rejected += result.rejected
        self._stats.hit_bytes += float(result.hit_pages) * page
        return result.hit_mask

    def _warm_epoch_hits(self, item_ids: np.ndarray,
                         sizes: np.ndarray) -> np.ndarray:
        """Exact warm-epoch sweep: per-item ``lookup`` + ``admit`` on miss."""
        lookup = self.lookup
        admit = self.admit
        hits = np.empty(len(item_ids), dtype=bool)
        for i, (item_id, size) in enumerate(zip(np.asarray(item_ids).tolist(),
                                                np.asarray(sizes).tolist())):
            if lookup(item_id):
                hits[i] = True
            else:
                hits[i] = False
                admit(item_id, size)
        return hits

    def evict(self, item_id: int) -> bool:
        """Drop one item (posix_fadvise(DONTNEED)); True if it was present.

        Counted in :attr:`explicit_evictions`, not in the pressure-driven
        :attr:`evictions` thrashing indicator.
        """
        if item_id in self._inactive:
            self._inactive_bytes -= self._inactive.pop(item_id)
        elif item_id in self._active:
            self._active_bytes -= self._active.pop(item_id)
        else:
            return False
        self._explicit_evictions += 1
        return True

    def clear(self) -> None:
        """Drop the whole cache (echo 3 > /proc/sys/vm/drop_caches)."""
        self._inactive.clear()
        self._active.clear()
        self._inactive_bytes = 0.0
        self._active_bytes = 0.0
