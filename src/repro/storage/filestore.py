"""File store: the storage-resident copy of a dataset.

A :class:`FileStore` binds a :class:`~repro.datasets.dataset.SyntheticDataset`
to a :class:`~repro.storage.device.StorageDevice` and answers item reads,
returning the *time* the read would take and accounting the bytes in an
:class:`~repro.storage.iostats.IOStats`.  It is the single point through which
all disk traffic in the simulation flows, so read amplification and disk-I/O
totals reported by the experiments are actual counts of calls made by the
loaders, not closed-form estimates.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.dataset import SyntheticDataset
from repro.storage.device import StorageDevice
from repro.storage.iostats import IOStats


class FileStore:
    """Dataset resident on one storage device.

    Args:
        dataset: The dataset stored on this device.
        device: The storage device model.
        sequential_hint: When true, reads are charged at the device's
            sequential bandwidth (TFRecord chunks / DALI-seq whole-file scans).
    """

    def __init__(self, dataset: SyntheticDataset, device: StorageDevice,
                 sequential_hint: bool = False) -> None:
        self._dataset = dataset
        self._device = device
        self._sequential_hint = sequential_hint
        self._stats = IOStats()

    @property
    def dataset(self) -> SyntheticDataset:
        """The dataset stored here."""
        return self._dataset

    @property
    def device(self) -> StorageDevice:
        """The backing device model."""
        return self._device

    @property
    def stats(self) -> IOStats:
        """Cumulative I/O counters for this store."""
        return self._stats

    def read_item(self, item_id: int, at_time: Optional[float] = None,
                  sequential: Optional[bool] = None) -> float:
        """Read one item from storage; returns the read duration in seconds."""
        nbytes = self._dataset.item_size(item_id)
        return self.read_bytes(nbytes, at_time=at_time, sequential=sequential)

    def read_bytes(self, nbytes: float, at_time: Optional[float] = None,
                   sequential: Optional[bool] = None) -> float:
        """Read an arbitrary byte extent (used for record chunks)."""
        seq = self._sequential_hint if sequential is None else sequential
        duration = self._device.read_time(nbytes, sequential=seq)
        self._stats.record_disk(nbytes, at_time=at_time)
        return duration

    def bulk_read_times(self, sizes: "np.ndarray",
                        sequential: Optional[bool] = None) -> "np.ndarray":
        """Per-read durations for many reads, without recording them.

        The vectorised fetch path needs the durations *before* it can place
        the reads on the virtual timeline; pair with :meth:`record_bulk`.
        """
        seq = self._sequential_hint if sequential is None else sequential
        return self._device.read_times_array(sizes, sequential=seq)

    def record_bulk(self, sizes: Sequence[float],
                    at_times: Optional[Sequence[float]] = None) -> None:
        """Account many reads at once (see :meth:`IOStats.record_disk_bulk`)."""
        self._stats.record_disk_bulk(sizes, at_times)

    def reset_stats(self) -> None:
        """Clear accumulated I/O counters (e.g. after the warm-up epoch)."""
        self._stats.reset()
