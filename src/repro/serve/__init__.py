"""Long-running what-if sweep service: daemon, coalescing batcher, client.

The serve layer turns the reproduction from a batch tool into a service:
one :class:`ServeDaemon` keeps a :class:`~repro.store.SweepStore` and a
:class:`~repro.store.PersistentPool` open and answers what-if /
experiment / report queries as JSON over HTTP (stdlib
``ThreadingHTTPServer``; wire shapes in :mod:`repro.serve.protocol`).

Between the HTTP front end and the simulator sits the
:class:`CoalescingBatcher`: overlapping concurrent requests are
deduplicated by the store's content address — each unique point is
in flight at most once, every requester shares its future — and batched
into shared :meth:`~repro.sim.sweep.SweepRunner.run` calls, one batch
thread per runner configuration so a slow grid never blocks an
unrelated fast one.  Deadlines are per-request: :meth:`QueryTicket.wait`
returns the finished points plus explicit ``timed_out`` markers while
the simulation keeps running into the store.

Surfaced on the command line as ``repro serve`` (start a daemon) and
``repro query`` (health / stats / what-if / experiment against one).

The layer is resilient by default: the daemon admission-controls
sweep-running POSTs (at most ``max_inflight`` concurrently; excess gets
``503`` + ``Retry-After``), drains gracefully on close, and reports
per-subsystem degradation on ``/v1/health``; the client transparently
retries idempotent requests over connection resets, refused connects and
``503`` rejections with capped exponential backoff.
"""

from repro.serve.batcher import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_WINDOW_S,
    CoalescingBatcher,
    PointFuture,
    PointOutcome,
    QueryTicket,
)
from repro.serve.client import (
    DEFAULT_BACKOFF_S,
    DEFAULT_CLIENT_RETRIES,
    MAX_BACKOFF_S,
    MAX_RETRY_AFTER_S,
    ServeClient,
    ServeError,
    WhatIfResult,
)
from repro.serve.protocol import (
    ALLOWED_FACTORY_MODULES,
    BUSY_REASONS,
    PROTOCOL_VERSION,
    RETRY_AFTER_HEADER,
    point_from_wire,
    point_to_wire,
    points_from_wire,
    record_from_wire,
    record_to_wire,
    runner_from_wire,
    runner_to_wire,
)
from repro.serve.server import (
    DEFAULT_DEADLINE_S,
    DEFAULT_MAX_INFLIGHT,
    ServeDaemon,
    latency_percentiles,
)

__all__ = [
    "ServeDaemon",
    "ServeClient",
    "ServeError",
    "WhatIfResult",
    "CoalescingBatcher",
    "QueryTicket",
    "PointFuture",
    "PointOutcome",
    "latency_percentiles",
    "runner_to_wire",
    "runner_from_wire",
    "point_to_wire",
    "point_from_wire",
    "points_from_wire",
    "record_to_wire",
    "record_from_wire",
    "ALLOWED_FACTORY_MODULES",
    "BUSY_REASONS",
    "PROTOCOL_VERSION",
    "RETRY_AFTER_HEADER",
    "DEFAULT_DEADLINE_S",
    "DEFAULT_WINDOW_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_CLIENT_RETRIES",
    "DEFAULT_BACKOFF_S",
    "MAX_BACKOFF_S",
    "MAX_RETRY_AFTER_S",
]
