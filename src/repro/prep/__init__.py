"""Pre-processing substrate: transform costs, pipelines, worker pools."""

from repro.prep.pipeline import PrepCost, PrepPipeline
from repro.prep.transforms import (
    Transform,
    audio_pipeline,
    dali_image_pipeline,
    detection_pipeline,
    expansion_factor,
    pillow_image_pipeline,
    pipeline_for_task,
)
from repro.prep.workers import WorkerPool

__all__ = [
    "Transform",
    "PrepPipeline",
    "PrepCost",
    "WorkerPool",
    "dali_image_pipeline",
    "pillow_image_pipeline",
    "audio_pipeline",
    "detection_pipeline",
    "pipeline_for_task",
    "expansion_factor",
]
