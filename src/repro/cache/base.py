"""Cache interface.

All caches in this library share a minimal byte-budgeted interface: look up an
item, admit an item, and report occupancy.  Caches store item *ids* and
*sizes*, never payloads — the simulation only needs to know whether a request
hits and how many bytes move.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional

import numpy as np

from repro.cache.stats import CacheStats
from repro.exceptions import ConfigurationError


class Cache(ABC):
    """Byte-budgeted cache of dataset items.

    Args:
        capacity_bytes: Total byte budget.  A capacity of zero is legal and
            models the "cold, cache-disabled" configurations DS-Analyzer uses
            to measure the pure storage fetch rate.
    """

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes < 0:
            raise ConfigurationError("cache capacity cannot be negative")
        self._capacity = float(capacity_bytes)
        self._stats = CacheStats()

    @property
    def capacity_bytes(self) -> float:
        """Total byte budget."""
        return self._capacity

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters."""
        return self._stats

    @property
    @abstractmethod
    def used_bytes(self) -> float:
        """Bytes currently occupied."""

    @abstractmethod
    def __contains__(self, item_id: int) -> bool:
        """Whether the item is currently cached (no side effects)."""

    @abstractmethod
    def lookup(self, item_id: int) -> bool:
        """Record an access; return True on hit.

        Unlike ``__contains__`` this updates recency metadata (for policies
        that track it) and the hit/miss counters.
        """

    @abstractmethod
    def admit(self, item_id: int, size_bytes: float) -> bool:
        """Offer an item for caching after a miss; return True if cached."""

    @abstractmethod
    def cached_items(self) -> Iterable[int]:
        """Ids of all currently cached items."""

    def bulk_epoch_hits(self, item_ids: np.ndarray,
                        sizes: np.ndarray) -> Optional[np.ndarray]:
        """Apply one single-pass epoch of accesses in bulk, if analytic.

        ``item_ids`` must be pairwise distinct (the DNN epoch invariant: every
        item at most once per epoch).  When the policy's trajectory over such
        a pass is analytically known, the cache applies *exactly* the
        mutations and counter updates that per-item ``lookup`` + ``admit``
        calls would have produced and returns the boolean hit mask.  When the
        trajectory depends on state that must be mutated step by step, the
        method returns ``None`` **without side effects** and the caller falls
        back to the per-item path.

        The default policy-agnostic answer is ``None``.
        """
        return None

    def __len__(self) -> int:
        return sum(1 for _ in self.cached_items())

    @property
    def free_bytes(self) -> float:
        """Remaining byte budget."""
        return max(0.0, self._capacity - self.used_bytes)

    def occupancy(self) -> float:
        """Fraction of the byte budget in use."""
        if self._capacity == 0:
            return 0.0
        return self.used_bytes / self._capacity

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching contents."""
        self._stats = CacheStats()
