"""Tests for the persistent sweep worker pool (``repro.store.PersistentPool``).

The pool's contract: workers outlive individual ``run()`` calls (pid
stability across consecutive runs — the PR 3 "amortise spawn" open item),
per-worker dataset/sampler caches are shared across runner configurations
(the PR 3 "shared dataset materialisation" open item), results stay
byte-identical to the serial executor, failures keep the labelled
``SweepPointError`` protocol, and store hits never touch the pool.
"""

from __future__ import annotations

import pytest

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import ConfigurationError, SweepPointError
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import PersistentPool, SweepStore

SCALE = 1 / 500.0


def _grid(cache_fractions=(0.4, 0.8)):
    return SweepRunner.grid(models=[RESNET18], loaders=["coordl", "dali-shuffle"],
                            cache_fractions=cache_fractions,
                            dataset="openimages")


@pytest.fixture(scope="module")
def pool():
    """One spawn pool shared by the whole module (spawning is the point)."""
    with PersistentPool(2) as shared:
        yield shared


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            PersistentPool(0)

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ConfigurationError):
            PersistentPool(2, chunksize=0)


class TestWorkerReuse:
    def test_workers_survive_consecutive_runs_and_results_are_exact(self, pool):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        serial = runner.run(_grid(), workers=0, store=False).snapshot()

        runs_before = pool.runs
        first = SweepRunner(config_ssd_v100, scale=SCALE, seed=0).run(
            _grid(), pool=pool, store=False).snapshot()
        pids_after_first = set(pool.pids_seen)
        second = SweepRunner(config_ssd_v100, scale=SCALE, seed=0).run(
            _grid(), pool=pool, store=False).snapshot()
        pids_after_second = set(pool.pids_seen)

        assert first == serial and second == serial
        assert pool.runs == runs_before + 2
        # The reuse assertion: the second run introduced no new worker
        # process, and the pool never used more than its configured size.
        assert pids_after_second == pids_after_first
        assert 1 <= len(pids_after_second) <= pool.workers
        assert pool.last_run_pids <= pids_after_second

    def test_substrate_caches_are_shared_across_runner_specs(self, pool):
        """Two different runner configurations (same dataset, seed and
        scale) served by one pool materialise the dataset once per worker:
        the worker-side dataset cache keys by (name, seed, scale), not by
        runner."""
        for factory in (config_ssd_v100, config_hdd_1080ti):
            SweepRunner(factory, scale=SCALE, seed=0).run(
                _grid(cache_fractions=(0.5,)), pool=pool, store=False)
        for pid, (runners, datasets, samplers) in pool.probe().items():
            if runners >= 2:
                # This worker served both specs, yet holds one dataset.
                assert datasets == 1
            assert datasets <= 1 or samplers >= 1

    def test_failures_keep_the_labelled_error_protocol(self, pool):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        good = SweepPoint(model=RESNET18, loader="coordl",
                          dataset="openimages", cache_fraction=0.5)
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="overcommitted-hp-point")
        with pytest.raises(SweepPointError) as excinfo:
            runner.run([good, bad], pool=pool, store=False)
        error = excinfo.value
        assert error.point_label == "overcommitted-hp-point"
        assert isinstance(error.__cause__, ConfigurationError)
        assert error.child_traceback is not None

    def test_store_hits_never_touch_the_pool(self, pool, tmp_path):
        store = SweepStore(tmp_path / "store")
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        cold = runner.run(_grid(), pool=pool, store=store).snapshot()
        runs_after_cold = pool.runs

        warm_store = SweepStore(tmp_path / "store")
        warm = SweepRunner(config_ssd_v100, scale=SCALE, seed=0).run(
            _grid(), pool=pool, store=warm_store).snapshot()
        assert warm == cold
        assert warm_store.hits == len(_grid()) and warm_store.misses == 0
        assert pool.runs == runs_after_cold  # the warm run enqueued nothing


class TestLifecycle:
    def test_close_is_idempotent_and_the_pool_rebuilds(self):
        pool = PersistentPool(1)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        points = _grid(cache_fractions=(0.5,))
        first = runner.run(points, pool=pool, store=False).snapshot()
        pool.close()
        pool.close()
        # A closed pool lazily rebuilds on the next run.
        second = SweepRunner(config_ssd_v100, scale=SCALE, seed=0).run(
            points, pool=pool, store=False).snapshot()
        pool.close()
        assert first == second

    def test_empty_point_list_is_a_noop(self):
        pool = PersistentPool(1)
        assert pool.run_points((config_ssd_v100, SCALE, 0, 4, True), []) == []
        assert pool.runs == 0
        pool.close()
