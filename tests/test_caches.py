"""Unit tests for the cache substrates: LRU, page cache, MinIO, partitioned."""

import numpy as np
import pytest

from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache
from repro.cache.page_cache import PageCache
from repro.cache.partitioned import LookupSource, PartitionedCacheGroup
from repro.datasets.sampler import RandomSampler
from repro.exceptions import ConfigurationError


class TestLRUCache:
    def test_hit_after_admit(self):
        cache = LRUCache(100.0)
        assert not cache.lookup(1)
        assert cache.admit(1, 10.0)
        assert cache.lookup(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(30.0)
        for item in (1, 2, 3):
            cache.admit(item, 10.0)
        cache.lookup(1)            # 1 becomes most recently used
        cache.admit(4, 10.0)       # evicts 2 (the LRU entry)
        assert 1 in cache and 3 in cache and 4 in cache
        assert 2 not in cache
        assert cache.stats.evictions == 1

    def test_oversized_item_rejected(self):
        cache = LRUCache(10.0)
        assert not cache.admit(1, 100.0)
        assert cache.stats.rejected == 1

    def test_used_bytes_tracks_contents(self):
        cache = LRUCache(100.0)
        cache.admit(1, 30.0)
        cache.admit(2, 20.0)
        assert cache.used_bytes == 50.0
        cache.evict(1)
        assert cache.used_bytes == 20.0

    def test_clear(self):
        cache = LRUCache(100.0)
        cache.admit(1, 30.0)
        cache.clear()
        assert cache.used_bytes == 0.0
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUCache(-1.0)


class TestPageCache:
    def test_rounds_items_up_to_whole_pages(self):
        cache = PageCache(100 * 4096.0)
        cache.admit(1, 1.0)
        assert cache.used_bytes == 4096.0

    def test_second_reference_promotes_to_active_list(self):
        cache = PageCache(10 * 4096.0)
        cache.admit(1, 4096.0)
        assert cache.active_bytes == 0.0
        cache.lookup(1)
        assert cache.active_bytes == 4096.0
        assert cache.inactive_bytes == 0.0

    def test_active_list_protected_from_streaming_evictions(self):
        # Capacity for 4 pages; items 1 and 2 are promoted (hot), then a
        # stream of cold items passes through.  The hot items survive.
        cache = PageCache(4 * 4096.0, active_target_fraction=0.5)
        for hot in (1, 2):
            cache.admit(hot, 4096.0)
            cache.lookup(hot)
        for cold in range(100, 120):
            cache.admit(cold, 4096.0)
        assert 1 in cache and 2 in cache

    def test_thrashing_under_single_pass_random_access(self, tiny_dataset):
        """The paper's key observation: LRU yields fewer hits than capacity."""
        capacity_fraction = 0.5
        cache = PageCache(tiny_dataset.total_bytes * capacity_fraction)
        sampler = RandomSampler(len(tiny_dataset), seed=0)
        for epoch in range(3):
            if epoch == 2:
                cache.reset_stats()
            for item in sampler.epoch(epoch):
                item = int(item)
                if not cache.lookup(item):
                    cache.admit(item, tiny_dataset.item_size(item))
        assert cache.stats.hit_ratio < capacity_fraction
        assert cache.evictions > 0

    def test_sequential_scan_is_pathological(self, tiny_dataset):
        cache = PageCache(tiny_dataset.total_bytes * 0.5)
        for epoch in range(2):
            if epoch == 1:
                cache.reset_stats()
            for item in range(len(tiny_dataset)):
                if not cache.lookup(item):
                    cache.admit(item, tiny_dataset.item_size(item))
        assert cache.stats.hit_ratio < 0.05

    def test_explicit_evict_and_clear(self):
        cache = PageCache(10 * 4096.0)
        cache.admit(1, 4096.0)
        assert cache.evict(1)
        assert not cache.evict(1)
        cache.admit(2, 4096.0)
        cache.clear()
        assert cache.used_bytes == 0.0

    def test_explicit_evictions_counted_separately_from_pressure(self):
        """fadvise(DONTNEED) drops are policy, not thrashing (split counters)."""
        cache = PageCache(2 * 4096.0)
        cache.admit(1, 4096.0)
        assert cache.evict(1)
        assert not cache.evict(99)          # absent: no count
        assert cache.explicit_evictions == 1
        assert cache.pressure_evictions == 0
        assert cache.evictions == 0         # the thrashing indicator
        # Now fill past capacity: pressure evictions only.
        for item in (2, 3, 4):
            cache.admit(item, 4096.0)
        assert cache.pressure_evictions == 1
        assert cache.evictions == 1
        assert cache.explicit_evictions == 1

    def test_pressure_eviction_can_press_on_active_list(self):
        """With a full active target, reclaim falls through to active pages."""
        cache = PageCache(2 * 4096.0, active_target_fraction=1.0)
        for item in (1, 2):
            cache.admit(item, 4096.0)
            cache.lookup(item)              # promote: whole cache is active
        cache.admit(3, 4096.0)
        assert cache.pressure_evictions == 1
        assert 1 not in cache and 2 in cache and 3 in cache

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PageCache(100.0, page_bytes=0)
        with pytest.raises(ConfigurationError):
            PageCache(100.0, active_target_fraction=1.5)


class TestPageCacheBulkStream:
    """Unit coverage of the segmented-LRU bulk kernel entry point
    (`PageCache.bulk_stream_hits`); the exhaustive equivalence is
    property-tested in tests/test_properties.py."""

    def _walk(self, cache, stream, sizes):
        hits = []
        for item, size in zip(stream.tolist(), sizes.tolist()):
            hit = cache.lookup(item)
            hits.append(hit)
            if not hit:
                cache.admit(item, size)
        return hits

    def test_thrashing_stream_matches_walk_bit_for_bit(self, tiny_dataset):
        capacity = tiny_dataset.total_bytes * 0.5
        scalar, bulk = PageCache(capacity), PageCache(capacity)
        sampler = RandomSampler(len(tiny_dataset), seed=0)
        stream = np.concatenate([sampler.epoch(e) for e in range(3)])
        sizes = tiny_dataset.item_sizes(stream)
        expected = self._walk(scalar, stream, sizes)
        hits = bulk.bulk_stream_hits(stream, sizes)
        assert hits is not None
        assert hits.tolist() == expected
        assert list(bulk.cached_items()) == list(scalar.cached_items())
        assert bulk.used_bytes == scalar.used_bytes
        assert bulk.active_bytes == scalar.active_bytes
        assert bulk.evictions == scalar.evictions > 0
        assert bulk.stats.hit_bytes == scalar.stats.hit_bytes

    def test_env_kill_switch_declines_without_side_effects(self, monkeypatch):
        from repro.cache.warm_kernel import WARM_KERNEL_ENV_VAR
        cache = PageCache(8 * 4096.0)
        cache.admit(1, 4096.0)
        monkeypatch.setenv(WARM_KERNEL_ENV_VAR, "0")
        stream = np.arange(4, dtype=np.int64)
        assert cache.bulk_stream_hits(stream, np.full(4, 4096.0)) is None
        assert cache.stats.accesses == 0
        assert cache.used_bytes == 4096.0

    def test_unprovable_page_arithmetic_declines_without_side_effects(self):
        # A page size with a fully-dense significand certifies almost no
        # exact multiples, so the kernel must decline rather than guess.
        cache = PageCache(1e9, page_bytes=4096.0 * (1 + 2.0**-52))
        cache.admit(1, 5000.0)
        before = dict(used=cache.used_bytes, hits=cache.stats.hits)
        stream = np.arange(64, dtype=np.int64)
        sizes = np.full(64, 5000.0)
        assert cache.bulk_stream_hits(stream, sizes) is None
        assert cache.used_bytes == before["used"]
        assert cache.stats.hits == before["hits"]

    def test_oversized_items_are_rejected_like_the_walk(self):
        capacity = 4 * 4096.0
        scalar, bulk = PageCache(capacity), PageCache(capacity)
        stream = np.array([0, 1, 0, 2], dtype=np.int64)
        sizes = np.array([4096.0, 10 * 4096.0, 4096.0, 2 * 4096.0])
        expected = self._walk(scalar, stream, sizes)
        hits = bulk.bulk_stream_hits(stream, sizes)
        assert hits is not None
        assert hits.tolist() == expected
        assert bulk.stats.rejected == scalar.stats.rejected == 1
        assert list(bulk.cached_items()) == list(scalar.cached_items())


class TestMinIOCache:
    def test_never_evicts(self):
        cache = MinIOCache(25.0)
        assert cache.admit(1, 10.0)
        assert cache.admit(2, 10.0)
        assert not cache.admit(3, 10.0)      # full: request defaults to storage
        assert 1 in cache and 2 in cache and 3 not in cache
        assert cache.stats.evictions == 0

    def test_exactly_capacity_hits_per_epoch(self, tiny_dataset):
        """MinIO's defining property (Sec. 4.1)."""
        cache = MinIOCache(tiny_dataset.total_bytes * 0.4)
        sampler = RandomSampler(len(tiny_dataset), seed=0)
        # Warm-up epoch.
        for item in sampler.epoch(0):
            item = int(item)
            if not cache.lookup(item):
                cache.admit(item, tiny_dataset.item_size(item))
        cached_items = len(list(cache.cached_items()))
        for epoch in (1, 2):
            cache.reset_stats()
            for item in sampler.epoch(epoch):
                item = int(item)
                if not cache.lookup(item):
                    cache.admit(item, tiny_dataset.item_size(item))
            assert cache.stats.hits == cached_items
            assert cache.stats.misses == len(tiny_dataset) - cached_items

    def test_admit_is_idempotent(self):
        cache = MinIOCache(100.0)
        assert cache.admit(1, 10.0)
        assert cache.admit(1, 10.0)
        assert cache.used_bytes == 10.0

    def test_item_size_lookup(self):
        cache = MinIOCache(100.0)
        cache.admit(1, 10.0)
        assert cache.item_size(1) == 10.0
        assert cache.item_size(2) == 0.0

    def test_is_full_property(self):
        cache = MinIOCache(10.0)
        assert not cache.is_full
        cache.admit(1, 10.0)
        assert cache.is_full


class TestPartitionedCacheGroup:
    def _group(self, dataset, num_servers=2, fraction_each=0.5, seed=0):
        capacities = [dataset.total_bytes * fraction_each] * num_servers
        group = PartitionedCacheGroup(dataset, capacities, seed=seed)
        group.populate_from_shards()
        return group

    def test_shards_partition_the_dataset(self, tiny_dataset):
        group = self._group(tiny_dataset)
        all_items = np.concatenate([group.shard(s) for s in range(group.num_servers)])
        assert sorted(all_items.tolist()) == list(range(len(tiny_dataset)))

    def test_aggregate_capacity_and_coverage(self, tiny_dataset):
        group = self._group(tiny_dataset, fraction_each=0.6)
        assert group.aggregate_capacity_bytes() == pytest.approx(
            tiny_dataset.total_bytes * 1.2)
        assert group.covers_dataset()
        small = self._group(tiny_dataset, fraction_each=0.3)
        assert not small.covers_dataset()

    def test_lookup_prefers_local_then_remote_then_storage(self, tiny_dataset):
        group = self._group(tiny_dataset, fraction_each=0.6)
        local_item = int(group.shard(0)[0])
        remote_item = int(group.shard(1)[0])
        assert group.lookup(0, local_item).source is LookupSource.LOCAL_CACHE
        remote = group.lookup(0, remote_item)
        assert remote.source is LookupSource.REMOTE_CACHE
        assert remote.owner == 1

    def test_uncached_items_fall_back_to_storage(self, tiny_dataset):
        group = self._group(tiny_dataset, fraction_each=0.2)
        uncached = [i for i in range(len(tiny_dataset)) if group.owner_of(i) is None]
        assert uncached, "with 40% aggregate cache some items must be uncached"
        assert group.lookup(0, uncached[0]).source is LookupSource.STORAGE

    def test_admit_local_updates_directory(self, tiny_dataset):
        group = self._group(tiny_dataset, fraction_each=0.2)
        uncached = [i for i in range(len(tiny_dataset)) if group.owner_of(i) is None]
        item = uncached[0]
        if group.admit_local(0, item):
            assert group.owner_of(item) == 0

    def test_invalid_configuration(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            PartitionedCacheGroup(tiny_dataset, [])
        group = self._group(tiny_dataset)
        with pytest.raises(ConfigurationError):
            group.lookup(5, 0)
