"""Pre-processing transform cost models.

Pre-processing of a raw training sample (Step 2 in Sec. 2) consists of a
decode followed by random augmentations (crop, resize, flip, normalize for
images; resample/clip for audio).  For stall analysis what matters is the CPU
time each stage costs per sample, and whether a stage can be offloaded to the
GPU (DALI offloads JPEG decode to nvJPEG and several augmentations to CUDA
kernels).

Costs are expressed in *core-seconds per byte of raw input* plus a fixed
per-sample overhead, so larger source images (OpenImages vs ImageNet) cost
proportionally more, matching the paper's observation that richer datasets
have higher prep stalls (Appendix B.1).

Two implementation flavours are provided because the paper compares them
(Appendix B.2): the Pillow/TorchVision path used by the native PyTorch
DataLoader, and the faster nvJPEG/DALI path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Transform:
    """One pre-processing stage.

    Attributes:
        name: Stage name ("decode", "random_crop", ...).
        cpu_seconds_per_byte: Core-seconds consumed per raw input byte.
        cpu_seconds_fixed: Fixed core-seconds per sample regardless of size.
        gpu_offloadable: Whether DALI can run this stage on the GPU.
        stochastic: Whether the stage applies a random perturbation.  Only
            stochastic stages force re-execution every epoch; this flag drives
            the correctness argument for why pre-processed data must not be
            reused across epochs (Sec. 4.3).
    """

    name: str
    cpu_seconds_per_byte: float
    cpu_seconds_fixed: float = 0.0
    gpu_offloadable: bool = False
    stochastic: bool = False

    def __post_init__(self) -> None:
        if self.cpu_seconds_per_byte < 0 or self.cpu_seconds_fixed < 0:
            raise ConfigurationError("transform costs cannot be negative")

    def cpu_cost(self, raw_bytes: float) -> float:
        """Core-seconds to run this stage on one sample of the given raw size."""
        return self.cpu_seconds_fixed + self.cpu_seconds_per_byte * raw_bytes


# ---------------------------------------------------------------------------
# Stage presets.
#
# Calibration anchor (Fig. 1): 24 cores sustain ~735 MB/s of raw input through
# the full DALI CPU image pipeline => ~30.6 MB/s per core => ~3.27e-8
# core-seconds per raw byte end-to-end.  Decode dominates (roughly 70 % of the
# cost); the augmentations share the rest.  The Pillow path is ~2.2x slower
# end-to-end (Appendix B.2: DALI-CPU clearly beats PyTorch DL even without the
# GPU).
# ---------------------------------------------------------------------------

_DALI_TOTAL_S_PER_BYTE = 1.0 / (30.6e6)          # 24 cores -> 735 MB/s
_PILLOW_TOTAL_S_PER_BYTE = _DALI_TOTAL_S_PER_BYTE * 2.2


def _split(total_s_per_byte: float, fractions: Sequence[float],
           names: Sequence[str], offloadable: Sequence[bool],
           stochastic: Sequence[bool]) -> Tuple[Transform, ...]:
    stages = []
    for name, frac, off, stoch in zip(names, fractions, offloadable, stochastic):
        stages.append(Transform(
            name=name,
            cpu_seconds_per_byte=total_s_per_byte * frac,
            cpu_seconds_fixed=2e-5,  # dispatch / allocation overhead per sample
            gpu_offloadable=off,
            stochastic=stoch,
        ))
    return tuple(stages)


def dali_image_pipeline() -> Tuple[Transform, ...]:
    """nvJPEG-based image pipeline used by DALI (decode + augment + collate)."""
    return _split(
        _DALI_TOTAL_S_PER_BYTE,
        fractions=(0.70, 0.15, 0.05, 0.07, 0.03),
        names=("decode", "random_crop_resize", "random_flip", "normalize", "collate"),
        offloadable=(True, True, True, True, False),
        stochastic=(False, True, True, False, False),
    )


def pillow_image_pipeline() -> Tuple[Transform, ...]:
    """Pillow/TorchVision image pipeline used by the native PyTorch DataLoader."""
    return _split(
        _PILLOW_TOTAL_S_PER_BYTE,
        fractions=(0.72, 0.14, 0.04, 0.07, 0.03),
        names=("decode", "random_crop_resize", "random_flip", "normalize", "collate"),
        offloadable=(False, False, False, False, False),
        stochastic=(False, True, True, False, False),
    )


def audio_pipeline() -> Tuple[Transform, ...]:
    """Raw-waveform audio pipeline (M5 on FMA): decode + resample + random clip."""
    total = _DALI_TOTAL_S_PER_BYTE * 0.10  # waveform prep is cheap per byte
    return _split(
        total,
        fractions=(0.55, 0.30, 0.15),
        names=("audio_decode", "resample", "random_clip"),
        offloadable=(False, False, False),
        stochastic=(False, False, True),
    )


def detection_pipeline() -> Tuple[Transform, ...]:
    """SSD object-detection pipeline: image decode + box-aware augmentations."""
    total = _DALI_TOTAL_S_PER_BYTE * 1.25
    return _split(
        total,
        fractions=(0.60, 0.22, 0.08, 0.07, 0.03),
        names=("decode", "ssd_random_crop", "random_flip", "normalize", "collate"),
        offloadable=(True, True, True, True, False),
        stochastic=(False, True, True, False, False),
    )


def pipeline_for_task(task: str, library: str = "dali") -> Tuple[Transform, ...]:
    """Pick the stage list for a task/library combination.

    Args:
        task: "image_classification", "object_detection", or
            "audio_classification".
        library: "dali" (nvJPEG) or "pytorch" (Pillow).
    """
    if task == "audio_classification":
        return audio_pipeline()
    if task == "object_detection":
        return detection_pipeline()
    if task == "image_classification":
        return dali_image_pipeline() if library == "dali" else pillow_image_pipeline()
    raise ConfigurationError(f"unknown task {task!r}")


def expansion_factor(task: str) -> float:
    """Decoded-to-raw size ratio of pre-processed samples.

    Pre-processed items are 5–7x larger than the raw encoded data (Sec. 4.3);
    this drives the argument for why caching pre-processed tensors is
    infeasible, and sizes the staging-area accounting.
    """
    return {"image_classification": 6.0,
            "object_detection": 6.0,
            "audio_classification": 5.0}.get(task, 6.0)
