"""CoorDL facade: one entry point for the three training scenarios.

CoorDL is a drop-in replacement for DALI / the PyTorch DataLoader (Sec. 4.4);
this facade mirrors that by exposing a constructor per training scenario:

* :meth:`CoorDL.for_single_server` — multi-GPU training on one server
  (MinIO cache).
* :meth:`CoorDL.for_distributed` — multi-server training
  (MinIO + partitioned caching); returns one loader per server.
* :meth:`CoorDL.for_hp_search` — several concurrent jobs on one server
  (MinIO + coordinated prep); returns the shared plan/staging machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.minio import MinIOCache
from repro.cluster.server import ServerConfig
from repro.coordl.coordinated_prep import CoordinatedEpochRunner, CoordinatedPrepPlan
from repro.coordl.failure import FailureDetector
from repro.coordl.minio_loader import CoorDLLoader, best_coordl_loader
from repro.coordl.partitioned_loader import PartitionedCoorDLLoader
from repro.coordl.staging import StagingArea
from repro.datasets.dataset import SyntheticDataset
from repro.exceptions import ConfigurationError
from repro.prep.pipeline import PrepPipeline


@dataclass
class HPSearchSession:
    """Shared state of a coordinated HP-search session on one server.

    Attributes:
        plan: Epoch-0 shard/batch assignment (re-built per epoch via
            :meth:`plan_for_epoch`).
        staging: The cross-job staging area.
        runner: Functional produce/consume runner for the current plan.
        detector: Failure detector wired to the plan.
        minio: The MinIO cache shared by the session's jobs.
    """

    dataset: SyntheticDataset
    server: ServerConfig
    num_jobs: int
    batch_size: int
    seed: int
    plan: CoordinatedPrepPlan
    staging: StagingArea
    runner: CoordinatedEpochRunner
    detector: FailureDetector
    minio: MinIOCache

    def plan_for_epoch(self, epoch: int) -> CoordinatedPrepPlan:
        """Fresh shard/batch assignment for a later epoch."""
        return CoordinatedPrepPlan(self.dataset, self.num_jobs, self.batch_size,
                                   epoch=epoch, seed=self.seed)


class CoorDL:
    """Namespace of constructors for the three CoorDL training scenarios."""

    @staticmethod
    def for_single_server(dataset: SyntheticDataset, server: ServerConfig,
                          batch_size: int, gpu_prep: Optional[bool] = None,
                          model_gpu_prep_interference: float = 0.0,
                          seed: int = 0) -> CoorDLLoader:
        """Single-server multi-GPU training with the MinIO cache.

        When ``gpu_prep`` is None the faster of CPU-prep and GPU-prep is
        chosen automatically (the paper's "best of" convention).
        """
        if gpu_prep is None:
            return best_coordl_loader(
                dataset, server, batch_size,
                model_gpu_prep_interference=model_gpu_prep_interference, seed=seed)
        return CoorDLLoader.build(dataset, server, batch_size,
                                  gpu_prep=gpu_prep, seed=seed)

    @staticmethod
    def for_distributed(dataset: SyntheticDataset, servers: List[ServerConfig],
                        batch_size_per_server: int, gpu_prep: bool = False,
                        seed: int = 0) -> List[PartitionedCoorDLLoader]:
        """Multi-server training with partitioned caching (one loader/server)."""
        if len(servers) < 2:
            raise ConfigurationError("distributed training needs at least two servers")
        return PartitionedCoorDLLoader.build_group(
            dataset, servers, batch_size_per_server, gpu_prep=gpu_prep, seed=seed)

    @staticmethod
    def for_hp_search(dataset: SyntheticDataset, server: ServerConfig,
                      num_jobs: int, batch_size: int,
                      iteration_time_s: float = 1.0,
                      seed: int = 0) -> HPSearchSession:
        """Coordinated prep for ``num_jobs`` concurrent HP-search jobs."""
        if num_jobs <= 0:
            raise ConfigurationError("need at least one HP-search job")
        plan = CoordinatedPrepPlan(dataset, num_jobs, batch_size, epoch=0, seed=seed)
        staging = StagingArea(num_jobs, batch_timeout_s=10.0 * iteration_time_s)
        detector = FailureDetector(num_jobs, iteration_time_s)
        prep = PrepPipeline.for_task(dataset.spec.task, library="dali")
        prep = prep.with_scaled_cost(dataset.spec.prep_cost_scale)
        runner = CoordinatedEpochRunner(plan, prep, dataset, staging=staging,
                                        failure_detector=detector)
        minio = MinIOCache(server.cache_bytes)
        return HPSearchSession(
            dataset=dataset,
            server=server,
            num_jobs=num_jobs,
            batch_size=batch_size,
            seed=seed,
            plan=plan,
            staging=staging,
            runner=runner,
            detector=detector,
            minio=minio,
        )
