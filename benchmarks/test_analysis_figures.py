"""Benchmarks regenerating the analysis-section figures (Figs. 1-6, Table 3, Fig. 8).

Each benchmark prints the reproduced table (run with ``-s`` to see it) and
asserts the qualitative findings of Sec. 3 of the paper.
"""

from __future__ import annotations

from repro.experiments import registry
from repro.experiments.base import DEFAULT_SCALE, SWEEP_SCALE


def test_fig1_resnet18_pipeline_rates(run_once):
    """Fig. 1: the data pipeline cannot feed 8 V100s for ResNet18."""
    result = run_once(registry.get_experiment("fig1"), scale=DEFAULT_SCALE)
    rates = {row["component"]: row["rate_mbps"] for row in result.rows}
    gpu_demand = rates["GPU ingestion demand (8xV100)"]
    assert rates["prep, 24 CPU cores"] < gpu_demand
    assert rates["prep, 24 cores + GPU offload"] < gpu_demand
    assert rates["HDD random read"] < rates["SSD random read"] < gpu_demand
    # The paper's anchors, loosely: SSD ~530 MB/s, CPU prep ~735 MB/s.
    assert 350 <= rates["SSD random read"] <= 600
    assert 500 <= rates["prep, 24 CPU cores"] <= 1000


def test_fig2_fetch_stalls_across_models(run_once):
    """Fig. 2: at a 35% cache most models lose 10-70% of the epoch to I/O."""
    result = run_once(registry.get_experiment("fig2"), scale=SWEEP_SCALE)
    stalls = result.column("fetch_stall_pct")
    assert sum(s >= 10.0 for s in stalls) >= 6
    assert 40.0 <= max(stalls) <= 95.0


def test_fig3_resnet18_cache_size_sweep(run_once):
    """Fig. 3: thrashing adds fetch stall on top of the capacity-miss minimum."""
    result = run_once(registry.get_experiment("fig3"), scale=SWEEP_SCALE)
    first, last = result.rows[0], result.rows[-1]
    assert first["cache_pct"] < last["cache_pct"]
    assert first["thrashing_stall_s"] > last["thrashing_stall_s"]
    assert first["dali_miss_pct"] > first["ideal_miss_pct"]


def test_fig4_cpu_cores_per_gpu_sweep(run_once):
    """Fig. 4: 3-4 cores/GPU suffice for ResNet50; light models need 12-24."""
    result = run_once(registry.get_experiment("fig4"), scale=SWEEP_SCALE)
    needed = {row["model"]: row["cores_needed_per_gpu"] for row in result.rows}
    assert needed["resnet50"] <= 5
    assert needed["resnet18"] >= 6
    assert needed["alexnet"] >= 8
    for model in ("resnet18", "alexnet"):
        rows = [r for r in result.rows if r["model"] == model]
        assert rows[-1]["throughput"] > rows[0]["throughput"]


def test_fig5_dali_gpu_prep_on_slow_vs_fast_gpus(run_once):
    """Fig. 5: GPU prep rescues the 1080Ti but leaves a large stall on V100s."""
    result = run_once(registry.get_experiment("fig5"), scale=SWEEP_SCALE)
    v100 = [r for r in result.rows
            if r["server"] == "Config-SSD-V100" and r["prep_mode"] == "cpu+gpu"][0]
    ti = [r for r in result.rows
          if r["server"] == "Config-HDD-1080Ti" and r["prep_mode"] == "cpu+gpu"][0]
    assert v100["prep_stall_pct"] > 20.0
    assert ti["prep_stall_pct"] < v100["prep_stall_pct"]


def test_fig6_prep_stalls_across_models(run_once):
    """Fig. 6: prep stalls of roughly 5-65%+, larger for compute-light models."""
    result = run_once(registry.get_experiment("fig6"), scale=SWEEP_SCALE)
    stalls = {row["model"]: row["prep_stall_pct"] for row in result.rows}
    assert stalls["shufflenetv2"] > stalls["mobilenetv2"] > stalls["resnet50"]
    assert max(stalls.values()) > 50.0
    assert min(stalls.values()) < 30.0


def test_tab3_tensorflow_tfrecord_stalls(run_once):
    """Table 3: TFRecord scans miss heavily and HP search amplifies reads ~6-8x."""
    result = run_once(registry.get_experiment("tab3"), scale=DEFAULT_SCALE)
    for row in result.rows:
        assert row["train_miss_pct"] >= 80.0
        assert 4.0 <= row["read_amplification"] <= 8.5


def test_fig8_minio_toy_example(run_once):
    """Fig. 8: MinIO takes only capacity misses; the page cache thrashes."""
    result = run_once(registry.get_experiment("fig8"))
    for row in result.rows:
        assert row["minio_misses"] == row["capacity_misses"] == 2
        assert 2 <= row["page_cache_misses"] <= 4
