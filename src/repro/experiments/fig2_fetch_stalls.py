"""Figure 2 — fetch stalls across nine DNNs with 35 % of the dataset cached.

On Config-SSD-V100 with only 35 % of each dataset cacheable, the paper finds
the nine models spend 10–70 % of epoch time blocked on I/O despite prefetching
and pipelining.  This experiment runs each model with the DALI-shuffle
baseline on its paper-assigned dataset and reports the fetch-stall fraction
of a steady-state epoch.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALL_STALL_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE, scaled_dataset
from repro.sim.single_server import SingleServerTraining


def run(scale: float = SWEEP_SCALE, cache_fraction: float = 0.35,
        models: Optional[Sequence[ModelSpec]] = None, num_epochs: int = 2,
        seed: int = 0) -> ExperimentResult:
    """Reproduce the per-model fetch-stall percentages of Fig. 2."""
    chosen = list(models) if models is not None else list(ALL_STALL_MODELS)
    result = ExperimentResult(
        experiment_id="fig2",
        title=f"Fig. 2 — fetch stalls with {cache_fraction:.0%} of the dataset cached "
              "(Config-SSD-V100, DALI)",
        columns=["model", "dataset", "fetch_stall_pct", "prep_stall_pct",
                 "epoch_time_s", "cache_miss_pct"],
        notes=["paper: DNNs spend 10-70% of epoch time blocked on I/O at a 35% cache"],
    )
    server_base = config_ssd_v100()
    for model in chosen:
        dataset = scaled_dataset(model.default_dataset, scale, seed)
        server = server_base.with_cache_bytes(dataset.total_bytes * cache_fraction)
        training = SingleServerTraining(model, dataset, server, num_epochs=num_epochs)
        sim = training.run("dali-shuffle", seed=seed)
        epoch = sim.run.steady_epoch()
        result.add_row(
            model=model.name,
            dataset=dataset.spec.name,
            fetch_stall_pct=100.0 * epoch.fetch_stall_fraction,
            prep_stall_pct=100.0 * epoch.prep_stall_fraction,
            epoch_time_s=epoch.epoch_time_s,
            cache_miss_pct=100.0 * epoch.cache_miss_ratio,
        )
    return result
