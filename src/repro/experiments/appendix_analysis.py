"""Appendix B analysis experiments: Figs. 12, 13 and 14.

* Fig. 12 — prep stalls on a high-CPU server (64 vCPUs): hyper-threads help
  only ~30 %, so ResNet18 still has ~37 % prep stalls at 8 vCPUs per GPU.
* Fig. 13 — native PyTorch DataLoader vs DALI (CPU and GPU prep) epoch times
  with a fully cached ImageNet-1K: DALI wins even on CPU because of nvJPEG,
  and GPU prep hurts compute-heavy models.
* Fig. 14 — batch-size sweep for MobileNetV2: larger batches make the GPU
  more efficient but the epoch time stops improving once prep is the
  bottleneck.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_high_cpu_v100, config_ssd_v100
from repro.compute.model_zoo import IMAGE_MODELS, MOBILENET_V2, RESNET18, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE, scaled_dataset
from repro.pipeline.dali import DALILoader
from repro.sim.engine import PipelineSimulator
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import PersistentPool, StoreArg


def run_fig12(scale: float = SWEEP_SCALE, dataset_name: str = "imagenet-1k",
              vcpus_per_gpu: Sequence[int] = (3, 4, 6, 8), seed: int = 0) -> ExperimentResult:
    """Fig. 12 — ResNet18 prep stalls as vCPUs per GPU grow (64-vCPU server)."""
    dataset = scaled_dataset(dataset_name, scale, seed)
    server = config_high_cpu_v100(cache_bytes=dataset.total_bytes * 1.2)
    result = ExperimentResult(
        experiment_id="fig12",
        title="Fig. 12 — ResNet18 prep stall vs vCPUs per GPU (8xV100, 64 vCPUs)",
        columns=["vcpus_per_gpu", "prep_mode", "epoch_time_s", "prep_stall_pct"],
        notes=["paper: 37% prep stall remains even at 8 vCPUs/GPU; hyperthreads add "
               "only ~30% prep throughput"],
    )
    for vcpus in vcpus_per_gpu:
        total_threads = vcpus * server.num_gpus
        physical = min(total_threads, server.physical_cores)
        hyper = max(0, total_threads - server.physical_cores)
        for gpu_prep in (False, True):
            pool = server.worker_pool(cores=physical, gpu_offload=gpu_prep)
            # Explicitly add the hyper-thread share for thread counts beyond
            # the physical cores (Appendix B.1's 30% marginal efficiency).
            from repro.prep.workers import WorkerPool
            pool = WorkerPool(physical_cores=float(physical), hyperthreads=float(hyper),
                              gpu_offload=gpu_prep,
                              gpu_decode_rate_scale=server.gpu.gpu_prep_scale)
            from repro.sim.single_server import effective_batch_size
            batch_size = effective_batch_size(
                dataset, RESNET18.batch_size_for(server.gpu) * server.num_gpus)
            loader = DALILoader.build(dataset, server, batch_size, mode="shuffle",
                                      gpu_prep=gpu_prep, seed=seed)
            loader._workers = pool  # inject the hyper-threaded pool
            sim = PipelineSimulator(RESNET18, server.gpu)
            stats = sim.run_epochs(loader, 2)[-1]
            result.add_row(
                vcpus_per_gpu=vcpus,
                prep_mode="cpu+gpu" if gpu_prep else "cpu-only",
                epoch_time_s=stats.epoch_time_s,
                prep_stall_pct=100.0 * stats.prep_stall_fraction,
            )
    return result


def run_fig13(scale: float = SWEEP_SCALE, dataset_name: str = "imagenet-1k",
              models: Sequence[ModelSpec] = IMAGE_MODELS, seed: int = 0,
              workers: Optional[int] = None,
              store: StoreArg = None,
              pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Fig. 13 — native PyTorch DL vs DALI-CPU vs DALI-GPU epoch times (cached)."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    # GPU prep interferes with the model's own compute, so DALI appears both
    # as a CPU-prep and a GPU-prep point per model.
    sweep = runner.run([
        SweepPoint(model=model, loader=loader, dataset=dataset_name,
                   cache_fraction=1.2, gpu_prep=gpu_prep)
        for model in models
        for loader, gpu_prep in (("pytorch", None), ("dali-shuffle", False),
                                 ("dali-shuffle", True))
    ], workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig13",
        title="Fig. 13 — epoch time: PyTorch DL vs DALI (CPU prep) vs DALI (GPU prep)",
        columns=["model", "pytorch_epoch_s", "dali_cpu_epoch_s", "dali_gpu_epoch_s",
                 "best_for_model"],
        notes=["dataset fully cached (ImageNet-1K); paper: DALI beats PyTorch DL even "
               "on CPU; GPU prep hurts ResNet50/VGG11"],
    )
    for model in models:
        pytorch = sweep.one(model=model, loader="pytorch").steady.epoch_time_s
        dali_cpu = sweep.one(model=model, loader="dali-shuffle",
                             gpu_prep=False).steady.epoch_time_s
        dali_gpu = sweep.one(model=model, loader="dali-shuffle",
                             gpu_prep=True).steady.epoch_time_s
        best = "dali-gpu" if dali_gpu < dali_cpu else "dali-cpu"
        result.add_row(
            model=model.name,
            pytorch_epoch_s=pytorch,
            dali_cpu_epoch_s=dali_cpu,
            dali_gpu_epoch_s=dali_gpu,
            best_for_model=best,
        )
    return result


def run_fig14(scale: float = SWEEP_SCALE, dataset_name: str = "imagenet-1k",
              batch_sizes: Sequence[int] = (64, 128, 256, 512),
              seed: int = 0) -> ExperimentResult:
    """Fig. 14 — batch-size impact on MobileNetV2 epoch time and prep stalls."""
    dataset = scaled_dataset(dataset_name, scale, seed)
    server = config_ssd_v100(cache_bytes=dataset.total_bytes * 1.2)
    model = MOBILENET_V2
    result = ExperimentResult(
        experiment_id="fig14",
        title="Fig. 14 — MobileNetV2: per-GPU batch size vs epoch time (cached)",
        columns=["batch_size_per_gpu", "gpu_compute_s", "epoch_time_s", "prep_stall_pct"],
        notes=["paper: GPU compute time drops with batch size (less sync) but the "
               "epoch time stays flat because prep is the bottleneck"],
    )
    for batch in batch_sizes:
        # Larger batches reduce per-step synchronisation overhead; model it as
        # a communication overhead inversely proportional to the batch size.
        sync_scale = 512.0 / batch
        from dataclasses import replace
        scaled_model = replace(model,
                               comm_overhead_per_gpu=model.comm_overhead_per_gpu * sync_scale)
        loader = DALILoader.build(dataset, server, batch * server.num_gpus,
                                  mode="shuffle", gpu_prep=True, seed=seed)
        sim = PipelineSimulator(scaled_model, server.gpu)
        stats = sim.run_epochs(loader, 2)[-1]
        result.add_row(
            batch_size_per_gpu=batch,
            gpu_compute_s=stats.gpu_time_s,
            epoch_time_s=stats.epoch_time_s,
            prep_stall_pct=100.0 * stats.prep_stall_fraction,
        )
    return result
