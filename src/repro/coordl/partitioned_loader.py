"""CoorDL distributed loader: partitioned caching across servers (Sec. 4.2).

One :class:`PartitionedCoorDLLoader` instance represents the data pipeline of
one *server* (rank) in a multi-server data-parallel job.  Local MinIO misses
are routed to the remote server that caches the item (metadata directory in
:class:`~repro.cache.partitioned.PartitionedCacheGroup`) over the TCP network
link, and only fall back to local storage when no server caches the item.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cache.partitioned import LookupSource, PartitionedCacheGroup
from repro.cluster.network import NetworkLink
from repro.cluster.server import ServerConfig
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import BatchSampler, DistributedSampler
from repro.exceptions import ConfigurationError
from repro.pipeline.base import BatchFetchResult, DataLoader
from repro.prep.pipeline import PrepPipeline
from repro.storage.filestore import FileStore


class PartitionedCoorDLLoader(DataLoader):
    """Per-server CoorDL loader participating in a partitioned cache group."""

    name = "coordl-partitioned"

    def __init__(self, *args, group: PartitionedCacheGroup, rank: int,
                 network: NetworkLink, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._group = group
        self._rank = rank
        self._network = network

    @property
    def rank(self) -> int:
        """This loader's server index within the distributed job."""
        return self._rank

    @property
    def group(self) -> PartitionedCacheGroup:
        """The job-wide partitioned cache group."""
        return self._group

    @classmethod
    def build_group(cls, dataset: SyntheticDataset, servers: List[ServerConfig],
                    batch_size: int, gpu_prep: bool = False, seed: int = 0,
                    group: Optional[PartitionedCacheGroup] = None,
                    ) -> List["PartitionedCoorDLLoader"]:
        """Build one loader per server, all sharing a partitioned cache group.

        Args:
            dataset: Dataset of the distributed job.
            servers: Participating servers (one loader per entry).
            batch_size: Per-server batch size (per-GPU batch x GPUs/server).
            gpu_prep: Offload prep to the GPUs.
            seed: Shared sampler/shard seed.
            group: Reuse an existing (possibly already-warm) cache group
                instead of building and populating a fresh one — the
                elasticity scenarios hand surviving servers' caches across a
                membership change this way.  Must have one cache per server.
        """
        if group is None:
            group = PartitionedCacheGroup(
                dataset, [s.cache_bytes for s in servers], seed=seed)
            group.populate_from_shards()
        elif group.num_servers != len(servers):
            raise ConfigurationError(
                f"group has {group.num_servers} caches for {len(servers)} servers")
        loaders: List[PartitionedCoorDLLoader] = []
        for rank, server in enumerate(servers):
            prep = PrepPipeline.for_task(dataset.spec.task, library="dali")
            prep = prep.with_scaled_cost(dataset.spec.prep_cost_scale)
            workers = server.worker_pool(gpu_offload=gpu_prep)
            sampler = DistributedSampler(len(dataset), num_replicas=len(servers),
                                         rank=rank, seed=seed)
            loaders.append(cls(
                dataset=dataset,
                store=FileStore(dataset, server.storage),
                cache=group.caches[rank],
                batch_sampler=BatchSampler(sampler, batch_size),
                prep=prep,
                workers=workers,
                num_gpus=server.num_gpus,
                group=group,
                rank=rank,
                network=server.network,
            ))
        return loaders

    def fetch_batch(self, batch: np.ndarray, at_time: float = 0.0) -> BatchFetchResult:
        """Fetch one minibatch: local MinIO, then remote cache, then storage."""
        duration = 0.0
        hits = 0
        misses = 0
        disk_bytes = 0.0
        cache_bytes = 0.0
        remote_bytes = 0.0
        for raw_id in batch:
            item_id = int(raw_id)
            lookup = self._group.lookup(self._rank, item_id)
            size = lookup.size_bytes
            if lookup.source is LookupSource.LOCAL_CACHE:
                hits += 1
                cache_bytes += size
                duration += self._dram.read_time(size)
                self._io.record_cache(size)
            elif lookup.source is LookupSource.REMOTE_CACHE:
                # A remote-cache hit avoids the fetch stall but is not a local
                # cache hit; count it separately.
                misses += 1
                remote_bytes += size
                duration += self._network.transfer_time(size)
                self._io.record_remote(size)
            else:
                misses += 1
                disk_bytes += size
                duration += self._store.read_bytes(size, at_time=at_time + duration)
                self._io.record_disk(size, at_time=at_time + duration)
                self._group.admit_local(self._rank, item_id)
        return BatchFetchResult(
            duration_s=duration,
            hits=hits,
            misses=misses,
            disk_bytes=disk_bytes,
            cache_bytes=cache_bytes,
            remote_bytes=remote_bytes,
        )

    def batch_time_arrays(self, epoch_index: int) -> Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Vectorised distributed epoch: bulk local/remote/storage accounting.

        The partitioned group's trajectory over a single-pass epoch is always
        analytic (MinIO caches never evict and the directory only gains
        entries for items that are not re-requested), so the whole epoch is
        classified into local-hit / remote-hit / storage-miss masks in one
        :meth:`~repro.cache.partitioned.PartitionedCacheGroup.bulk_epoch_lookup`
        call and charged to DRAM / network / storage in bulk, with exactly
        the side effects of the per-item :meth:`fetch_batch` loop (cache
        counters and admissions, directory updates, loader and store I/O
        accounting including the disk timeline).  Falls back (``None``,
        without side effects) for subclass-customised fetch policies and
        repeated-item epochs.
        """
        cls = type(self)
        if (cls.fetch_batch is not PartitionedCoorDLLoader.fetch_batch
                or cls.cached_fetch_time is not DataLoader.cached_fetch_time
                or cls.prep_batch_time is not DataLoader.prep_batch_time):
            return None
        plan = self._single_pass_epoch(epoch_index)
        if plan is None:
            return None
        batches, order, sizes = plan
        local, remote = self._group.bulk_epoch_lookup(self._rank, order, sizes)
        storage = ~(local | remote)

        # Point of no return: the group has applied its epoch mutations.
        item_times = np.empty(order.size, dtype=np.float64)
        item_times[local] = self._dram.read_times_array(sizes[local])
        item_times[remote] = self._network.transfer_times_array(sizes[remote])
        item_times[storage] = self._store.bulk_read_times(sizes[storage])
        clock = np.cumsum(item_times)
        if storage.any():
            miss_sizes = sizes[storage]
            # Store timeline at read start, loader timeline at completion,
            # exactly as in the per-item path above.
            self._store.record_bulk(miss_sizes,
                                    at_times=clock[storage] - item_times[storage])
            self._io.record_disk_bulk(miss_sizes, at_times=clock[storage])
        if local.any():
            self._io.record_cache_bulk(float(sizes[local].sum()), int(local.sum()))
        if remote.any():
            self._io.record_remote_bulk(float(sizes[remote].sum()), int(remote.sum()))
        return self._epoch_arrays(batches, item_times, sizes)
