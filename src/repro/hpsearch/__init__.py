"""Hyperparameter-search substrate: Hyperband/successive-halving + campaigns."""

from repro.hpsearch.campaign import CampaignResult, SearchCampaign
from repro.hpsearch.scheduler import (
    HyperbandScheduler,
    Rung,
    SuccessiveHalvingScheduler,
    Trial,
    sample_trials,
)

__all__ = [
    "Trial",
    "Rung",
    "sample_trials",
    "SuccessiveHalvingScheduler",
    "HyperbandScheduler",
    "SearchCampaign",
    "CampaignResult",
]
