"""Driver-side scheduler of the multi-host sweep fabric.

:class:`DistExecutor` satisfies the executor surface
:meth:`repro.sim.sweep.SweepRunner.run` already dispatches on — the
``run_points(spec, indexed_points, chunksize, on_record)`` duck type of
:class:`~repro.store.PersistentPool` — so ``runner.run(points,
pool=DistExecutor([...]))`` fans a grid out across machines with the
store, streaming hook and failure protocol unchanged.  The division of
labour mirrors the local pool exactly:

* **store hits never leave the driver** — ``run()`` resolves hits before
  dispatch, so only misses are framed onto the wire, and the driver's
  ``commit`` hook writes every streamed record back into the shared
  :class:`~repro.store.SweepStore`;
* **chunks are the scheduling unit** — misses are partitioned into chunks
  (about four per host by default) and assigned to connected agents;
* **idle hosts steal** — a host with nothing pending re-runs an
  outstanding chunk from a slower host after a short grace period.
  Duplicate execution is harmless by construction: per-point seeding
  makes every copy byte-identical, the driver delivers each index once
  (extras are counted in :attr:`duplicates`), and the store's write-once
  puts mean even racing *drivers* can only agree — the trace checker
  (:func:`repro.store.verify_store_trace`) proves it;
* **host death costs time, never bytes** — a dead connection (agent
  SIGKILLed mid-chunk, network gone) marks the host lost and requeues its
  chunk under a bounded reassignment budget, the distributed analogue of
  :class:`~repro.resilience.SupervisedExecutor`'s respawn budget.
  Exhausting the budget (or losing every host) raises the usual labelled
  :class:`~repro.exceptions.SweepPointError` naming the lowest lost
  point.

Results are reassembled in input order and are byte-identical at any
topology — the golden grids are replayed at hosts=1/2 × workers=0/1/2 by
``tools/dist_check.py`` to pin exactly that.

Fault injection: a :class:`~repro.resilience.FaultPlan` ``host_kills``
schedule (the ``host-death`` fault kind) fires driver-side after the
N-th delivered record by invoking the executor's ``kill_hook`` — wired to
:meth:`~repro.dist.LocalWorkerFleet.kill_one` in the chaos harness, which
SIGKILLs a real agent process mid-chunk.
"""

from __future__ import annotations

import math
import socket
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import (
    ConfigurationError,
    HostLostError,
    SimulationError,
    SweepPointError,
)
from repro.dist.protocol import (
    DIST_PROTOCOL_VERSION,
    parse_hosts,
    recv_frame,
    send_frame,
    spec_to_wire,
)
from repro.resilience.faults import FaultInjector, active_injector
from repro.serve.protocol import point_to_wire
from repro.sim.sweep import (
    SweepPoint,
    SweepRecord,
    _raise_lowest_failure,
)

#: Default bound on chunk reassignments after host death, per
#: :meth:`DistExecutor.run_points` call — the distributed analogue of the
#: supervised pool's respawn budget.
DEFAULT_MAX_REASSIGNS = 3

#: Seconds an idle host waits for fresh pending work before stealing an
#: outstanding chunk from a busier host.
DEFAULT_STEAL_DELAY_S = 0.05

#: Seconds allowed for the TCP connect + hello handshake per host.
CONNECT_TIMEOUT_S = 10.0

HostsArg = Union[str, Sequence[Union[str, Tuple[str, int]]]]


class _Chunk:
    """One scheduling unit: contiguous indexed tasks plus run state."""

    __slots__ = ("id", "tasks", "runners", "done", "stolen")

    def __init__(self, chunk_id: int,
                 tasks: List[Tuple[int, SweepPoint]]) -> None:
        self.id = chunk_id
        self.tasks = tasks
        self.runners: Set[str] = set()   # endpoints currently running it
        self.done = False
        self.stolen = False


class _Host:
    """Driver-side state of one worker agent connection."""

    __slots__ = ("endpoint", "address", "sock", "alive", "agent_workers",
                 "agent_pid")

    def __init__(self, endpoint: str, address: Tuple[str, int]) -> None:
        self.endpoint = endpoint
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.alive = False
        self.agent_workers = 0
        self.agent_pid: Optional[int] = None


class DistExecutor:
    """Work-stealing scheduler over a set of sweep worker agents.

    Args:
        hosts: Worker agents as a ``"host:port,host:port"`` string or a
            sequence of ``"host:port"`` strings / ``(host, port)`` pairs.
        chunksize: Default points per dispatched chunk (about four chunks
            per host when ``None`` — the local pool's split).
        max_reassigns: Chunk requeues allowed per :meth:`run_points` call
            after host deaths before the run escalates to
            :class:`~repro.exceptions.SweepPointError`.
        steal_delay_s: Idle grace period before an idle host steals an
            outstanding chunk.
        fault_injector: Optional :class:`~repro.resilience.FaultInjector`
            whose ``host_kills`` schedule this executor delivers; defaults
            to the process-wide injector (``REPRO_FAULT_PLAN``).
        kill_hook: Callable delivering one host-death fault (the chaos
            harness passes :meth:`~repro.dist.LocalWorkerFleet.kill_one`).
            Without a hook, ``host_kills`` entries are inert — the driver
            cannot kill arbitrary remote machines.

    The executor is the serve daemon's ``pool`` drop-in: it exposes the
    same ``workers`` / ``respawns`` / ``reruns`` health surface
    (``respawns`` counts chunk reassignments after host death, ``reruns``
    the points those reassignments re-shipped) and ``close(drain=...)``.
    ``run_points`` calls are serialised per executor — concurrent callers
    queue (the coalescing batcher in front of it already merges
    overlapping queries).

    Dead hosts are retried at the start of every :meth:`run_points` call,
    so an agent restarted by an operator rejoins the fabric on the next
    grid without driver restarts.
    """

    def __init__(self, hosts: HostsArg, chunksize: Optional[int] = None,
                 max_reassigns: int = DEFAULT_MAX_REASSIGNS,
                 steal_delay_s: float = DEFAULT_STEAL_DELAY_S,
                 fault_injector: Optional[FaultInjector] = None,
                 kill_hook: Optional[Callable[[], Any]] = None) -> None:
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be at least 1")
        if max_reassigns < 0:
            raise ConfigurationError("max_reassigns must be >= 0")
        if steal_delay_s < 0:
            raise ConfigurationError("steal_delay_s must be >= 0")
        self._hosts = [
            _Host(f"{host}:{port}", (host, port))
            for host, port in self._parse(hosts)]
        self._chunksize = chunksize
        self._max_reassigns = max_reassigns
        self._steal_delay_s = steal_delay_s
        self._injector = (fault_injector if fault_injector is not None
                          else active_injector())
        self._kill_hook = kill_hook
        self._run_lock = threading.Lock()
        self._cond = threading.Condition()
        self.runs = 0
        self.points_sent = 0
        self.steals = 0
        self.duplicates = 0
        self.reassignments = 0
        self.rerun_points = 0
        self.hosts_lost = 0

    @staticmethod
    def _parse(hosts: HostsArg) -> List[Tuple[str, int]]:
        if isinstance(hosts, str):
            return parse_hosts(hosts)
        parsed: List[Tuple[str, int]] = []
        for item in hosts:
            if isinstance(item, str):
                parsed.extend(parse_hosts(item))
            else:
                host, port = item
                parsed.append((str(host), int(port)))
        if not parsed:
            raise ConfigurationError("the worker host list is empty")
        return parsed

    # -- health surface (the serve daemon's pool duck type) ------------------

    @property
    def hosts(self) -> List[str]:
        """Configured agent endpoints, as ``host:port`` strings."""
        return [host.endpoint for host in self._hosts]

    @property
    def workers(self) -> int:
        """Remote execution slots: the sum of connected agents' local
        fan-out (at least one slot per agent), or the host count before
        any connection has been made."""
        connected = [host for host in self._hosts if host.alive]
        if not connected:
            return len(self._hosts)
        return sum(max(1, host.agent_workers) for host in connected)

    @property
    def respawns(self) -> int:
        """Chunk reassignments after host death (the recovery counter the
        serve health endpoint reports for its pool subsystem)."""
        return self.reassignments

    @property
    def reruns(self) -> int:
        """Points re-shipped by those reassignments."""
        return self.rerun_points

    # -- connections ---------------------------------------------------------

    def _connect(self, host: _Host) -> bool:
        """(Re)connect one host and run the hello handshake."""
        if host.sock is not None:
            host.alive = True
            return True
        try:
            sock = socket.create_connection(host.address,
                                            timeout=CONNECT_TIMEOUT_S)
            sock.settimeout(None)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
            send_frame(sock, {"type": "hello",
                              "protocol": DIST_PROTOCOL_VERSION})
            reply = recv_frame(sock)
            if (reply.get("type") != "hello"
                    or reply.get("protocol") != DIST_PROTOCOL_VERSION):
                raise ConnectionError(
                    f"agent {host.endpoint} answered {reply.get('type')!r} "
                    f"(protocol {reply.get('protocol')!r})")
        except (OSError, ConnectionError):
            host.sock = None
            host.alive = False
            return False
        host.sock = sock
        host.alive = True
        host.agent_workers = int(reply.get("workers", 0) or 0)
        host.agent_pid = reply.get("pid")
        return True

    def _drop(self, host: _Host) -> None:
        sock, host.sock = host.sock, None
        host.alive = False
        if sock is not None:
            try:
                # Wake a thread blocked in recv on this socket before
                # closing the fd — a bare close() does not interrupt it.
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self, drain: bool = True) -> None:
        """Send best-effort shutdowns and close every connection.

        ``drain=True`` waits for an in-flight :meth:`run_points` call to
        finish first (calls are serialised, so holding the run lock is
        the wait); ``drain=False`` closes sockets immediately, which a
        running call observes as every host dying at once.
        """
        if drain:
            with self._run_lock:
                self._close_connections(polite=True)
        else:
            self._close_connections(polite=False)

    def _close_connections(self, polite: bool) -> None:
        for host in self._hosts:
            if host.sock is not None and polite:
                try:
                    send_frame(host.sock, {"type": "shutdown"})
                    recv_frame(host.sock)  # bye
                except (OSError, ConnectionError):
                    pass
            self._drop(host)

    def __enter__(self) -> "DistExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- the executor surface ------------------------------------------------

    def run_points(self, spec: tuple,
                   indexed_points: List[Tuple[int, SweepPoint]],
                   chunksize: Optional[int] = None,
                   on_record: Optional[Callable[[int, SweepRecord], None]]
                   = None) -> List[Tuple[int, SweepRecord]]:
        """Run indexed points across the fabric; return (index, record)s
        in input order.

        ``on_record`` fires once per input index as its record is first
        delivered (stolen duplicates are dropped before the hook), from a
        host-connection thread — the store write-back path it is normally
        wired to (:meth:`~repro.sim.sweep.SweepRunner.run`'s ``commit``)
        is thread-safe by the store's own contract.  The failure protocol
        is the shared sweep one: drain everything, then raise the lowest
        failing input index as a labelled
        :class:`~repro.exceptions.SweepPointError`; a run that loses
        hosts beyond the reassignment budget (or loses every host) raises
        the same way, naming the lowest point still outstanding.
        """
        if not indexed_points:
            return []
        with self._run_lock:
            return self._run_locked(spec, list(indexed_points), chunksize,
                                    on_record)

    def _run_locked(self, spec, indexed_points, chunksize, on_record):
        wire_spec = spec_to_wire(spec)
        live = [host for host in self._hosts if self._connect(host)]
        if not live:
            raise HostLostError(
                f"no worker agent reachable (tried "
                f"{[h.endpoint for h in self._hosts]})")
        if chunksize is None:
            chunksize = self._chunksize
        if chunksize is None:
            chunksize = max(1, math.ceil(len(indexed_points)
                                         / (len(live) * 4)))
        elif chunksize < 1:
            raise ConfigurationError("chunksize must be at least 1")
        chunks = [_Chunk(i, indexed_points[start:start + chunksize])
                  for i, start in enumerate(
                      range(0, len(indexed_points), chunksize))]

        state = {
            "pending": deque(chunks),
            "chunks": chunks,
            "delivered": {},          # index -> SweepRecord
            "failures": {},           # index -> (exc, traceback text)
            "records_seen": 0,
            "reassigns": 0,
            "aborted": False,
            "finished": False,
            "live": len(live),
            "wire_spec": wire_spec,
            "on_record": on_record,
            "kills": (self._injector.host_kill_schedule()
                      if self._injector is not None else None),
        }
        threads = []
        for host in live:
            thread = threading.Thread(
                target=self._serve_host, args=(host, state),
                name=f"repro-dist-{host.endpoint}", daemon=True)
            thread.start()
            threads.append(thread)

        with self._cond:
            while (not all(c.done for c in chunks) and not state["aborted"]
                   and state["live"] > 0):
                self._cond.wait(0.05)
            finished = all(c.done for c in chunks)
            state["finished"] = True
        for thread in threads:
            thread.join(1.0)
        for host, thread in zip(live, threads):
            if thread.is_alive():
                # A hung agent (stalled mid-chunk after its work was stolen,
                # or still draining after an abort): cut the connection so
                # the thread unblocks; the host reconnects next run.
                self._drop(host)
                thread.join(5.0)

        self.runs += 1
        delivered: Dict[int, SweepRecord] = state["delivered"]
        failures: Dict[int, tuple] = {
            index: failure for index, failure in state["failures"].items()
            if index not in delivered}
        if failures:
            _raise_lowest_failure(failures, indexed_points)
        if not finished:
            missing = sorted(index for index, _ in indexed_points
                             if index not in delivered)
            points = dict(indexed_points)
            label = points[missing[0]].describe() if missing else ""
            where = f" (first lost point: {label})" if label else ""
            error = SweepPointError(
                f"sweep hosts kept dying: {len(missing)} point(s) lost "
                f"after {state['reassigns']} chunk reassignment(s) across "
                f"{self.hosts_lost} host death(s){where}")
            error.point_label = label
            raise error
        return sorted(delivered.items())

    # -- per-host scheduling loop --------------------------------------------

    def _serve_host(self, host: _Host, state: Dict[str, Any]) -> None:
        while True:
            chunk = self._next_chunk(host, state)
            if chunk is None:
                return
            try:
                self._run_chunk_on(host, chunk, state)
            except Exception as exc:
                # Dead connections (agent SIGKILLed, network gone) and any
                # malformed agent traffic count the same: this host is lost
                # for the rest of the run, its chunk goes back on the queue.
                self._host_lost(host, chunk, state, exc)
                return

    def _next_chunk(self, host: _Host,
                    state: Dict[str, Any]) -> Optional[_Chunk]:
        waited = False
        with self._cond:
            while True:
                if state["aborted"] or all(c.done for c in state["chunks"]):
                    return None
                pending: deque = state["pending"]
                if pending:
                    chunk = pending.popleft()
                    chunk.runners.add(host.endpoint)
                    return chunk
                candidates = [c for c in state["chunks"]
                              if not c.done
                              and host.endpoint not in c.runners]
                if candidates and waited:
                    # Steal the chunk with the fewest runners (ties: the
                    # earliest), so steals spread instead of piling up.
                    chunk = min(candidates,
                                key=lambda c: (len(c.runners), c.id))
                    chunk.runners.add(host.endpoint)
                    chunk.stolen = True
                    self.steals += 1
                    return chunk
                self._cond.wait(self._steal_delay_s or 0.01)
                waited = True

    def _run_chunk_on(self, host: _Host, chunk: _Chunk,
                      state: Dict[str, Any]) -> None:
        # Snapshot the socket: _drop() (run teardown, close()) nulls
        # host.sock from another thread; the local keeps this loop on the
        # same fd so the shutdown() in _drop surfaces here as an EOF.
        sock = host.sock
        if sock is None:
            raise ConnectionError(f"agent {host.endpoint} connection closed")
        send_frame(sock, {
            "type": "run_chunk", "id": chunk.id,
            "spec": state["wire_spec"],
            "points": [[index, point_to_wire(point)]
                       for index, point in chunk.tasks]})
        self.points_sent += len(chunk.tasks)
        while True:
            frame = recv_frame(sock)
            kind = frame.get("type")
            if kind == "record":
                self._deliver(int(frame["index"]), frame["snapshot"], state)
            elif kind == "point_error":
                self._fail(int(frame["index"]), frame.get("error", ""),
                           frame.get("traceback", ""), state)
            elif kind == "chunk_done":
                with self._cond:
                    chunk.done = True
                    chunk.runners.discard(host.endpoint)
                    self._cond.notify_all()
                return
            elif kind == "error":
                raise ConnectionError(
                    f"agent {host.endpoint} refused the chunk: "
                    f"{frame.get('error')}")
            else:
                raise ConnectionError(
                    f"agent {host.endpoint} sent unexpected {kind!r}")

    def _deliver(self, index: int, snapshot: Dict[str, Any],
                 state: Dict[str, Any]) -> None:
        record = SweepRecord.from_snapshot(snapshot)
        kill_due = False
        with self._cond:
            if index in state["delivered"]:
                self.duplicates += 1
                return
            state["delivered"][index] = record
            state["failures"].pop(index, None)
            state["records_seen"] += 1
            kills = state["kills"]
            if kills is not None and kills.due(state["records_seen"]):
                kill_due = True
        on_record = state["on_record"]
        if on_record is not None:
            on_record(index, record)
        if kill_due and self._kill_hook is not None:
            # Deliver the planned host-death fault outside the lock: the
            # hook may block on process teardown.
            self._kill_hook()
            if self._injector is not None:
                self._injector.note_host_kill()

    def _fail(self, index: int, error: str, traceback_text: str,
              state: Dict[str, Any]) -> None:
        with self._cond:
            if index in state["delivered"] or index in state["failures"]:
                return
            state["failures"][index] = (
                SimulationError(f"remote point failure: {error}"),
                traceback_text or None)

    def _host_lost(self, host: _Host, chunk: _Chunk,
                   state: Dict[str, Any], exc: BaseException) -> None:
        self._drop(host)
        with self._cond:
            if state["finished"]:
                # Run teardown cut this connection on purpose (a hung or
                # abandoned host after completion) — not a death to count.
                return
            self.hosts_lost += 1
            state["live"] -= 1
            chunk.runners.discard(host.endpoint)
            if not chunk.done and not chunk.runners and not state["aborted"]:
                # Nobody else is running (or stealing) this chunk: requeue
                # it under the budget so a surviving host picks it up.
                if state["reassigns"] >= self._max_reassigns:
                    state["aborted"] = True
                else:
                    state["reassigns"] += 1
                    self.reassignments += 1
                    self.rerun_points += len(chunk.tasks)
                    state["pending"].append(chunk)
            self._cond.notify_all()
