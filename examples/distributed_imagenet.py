#!/usr/bin/env python3
"""Distributed training with partitioned caching (the paper's Fig. 10 setting).

Trains ResNet50 on (a scaled) ImageNet-1K across two Config-HDD-1080Ti
servers, each able to cache half the dataset.  Compares the per-epoch disk
traffic and epoch time of the DALI baseline (uncoordinated local page caches)
against CoorDL's partitioned cache, then converts both into an estimated
time-to-75.9%-accuracy using the shared accuracy-vs-epoch curve.

Run with ``python examples/distributed_imagenet.py``.
"""

from __future__ import annotations

from repro.cluster import config_hdd_1080ti
from repro.compute import RESNET50
from repro.datasets import SyntheticDataset, get_dataset_spec
from repro.sim import DistributedTraining, resnet50_imagenet_curve, time_to_accuracy
from repro.units import speedup, to_hours

SCALE = 1.0 / 100.0
NUM_SERVERS = 2
CACHE_FRACTION_PER_SERVER = 0.5
TARGET_ACCURACY = 0.759


def main() -> None:
    dataset = SyntheticDataset(get_dataset_spec("imagenet-1k"), scale=SCALE)
    servers = [
        config_hdd_1080ti(cache_bytes=dataset.total_bytes * CACHE_FRACTION_PER_SERVER)
        for _ in range(NUM_SERVERS)
    ]
    print(f"{NUM_SERVERS}x {servers[0].name} "
          f"({NUM_SERVERS * servers[0].num_gpus} GPUs total), "
          f"each caching {CACHE_FRACTION_PER_SERVER:.0%} of {dataset.name}\n")

    training = DistributedTraining(RESNET50, dataset, servers, num_epochs=3)
    baseline = training.run_baseline()
    coordl = training.run_coordl()

    print(f"{'':<30}{'DALI':>14}{'CoorDL':>14}")
    b_epoch, c_epoch = baseline.steady_epochs()[-1], coordl.steady_epochs()[-1]
    print(f"{'epoch time (s, scaled data)':<30}{b_epoch.epoch_time_s:>14.1f}"
          f"{c_epoch.epoch_time_s:>14.1f}")
    print(f"{'disk I/O per epoch (GB)':<30}{b_epoch.total_disk_bytes / 1e9:>14.2f}"
          f"{c_epoch.total_disk_bytes / 1e9:>14.2f}")
    print(f"{'remote-cache traffic (GB)':<30}{b_epoch.total_remote_bytes / 1e9:>14.2f}"
          f"{c_epoch.total_remote_bytes / 1e9:>14.2f}")
    print(f"{'aggregate throughput (img/s)':<30}{b_epoch.throughput:>14,.0f}"
          f"{c_epoch.throughput:>14,.0f}")

    # Convert to full-scale time-to-accuracy: epoch times scale linearly with
    # the dataset, and the accuracy-vs-epoch curve is loader-independent.
    curve = resnet50_imagenet_curve()
    dali_tta = time_to_accuracy("dali", baseline.steady_epoch_time_s / SCALE,
                                curve, TARGET_ACCURACY)
    coordl_tta = time_to_accuracy("coordl", coordl.steady_epoch_time_s / SCALE,
                                  curve, TARGET_ACCURACY)
    print(f"\nestimated time to {TARGET_ACCURACY:.1%} top-1 at full ImageNet-1K scale:")
    print(f"  DALI   : {to_hours(dali_tta.time_to_accuracy_s):6.1f} hours "
          f"({dali_tta.epochs_needed:.0f} epochs)")
    print(f"  CoorDL : {to_hours(coordl_tta.time_to_accuracy_s):6.1f} hours "
          f"({coordl_tta.epochs_needed:.0f} epochs)")
    print(f"  speedup: {speedup(dali_tta.time_to_accuracy_s, coordl_tta.time_to_accuracy_s):.1f}x "
          f"(paper reports 4x: ~2 days -> ~12 hours)")


if __name__ == "__main__":
    main()
