"""Hyperparameter-search scenario (Sec. 3.3, Sec. 5.3, Figs. 9d/e, 17, 22, 23).

HP search runs ``k`` concurrent training jobs on one server, every job
training the *same* model on the *same* dataset with different
hyperparameters.  The baseline (DALI / PyTorch DL) gives each job an
independent data pipeline: the dataset is fetched and pre-processed ``k``
times per epoch through the shared OS page cache (thrashing + read
amplification) using ``cores / k`` CPU cores per job.  CoorDL's coordinated
prep fetches and preps the dataset exactly once per epoch (using all cores and
the MinIO cache) and shares the staged minibatches across jobs.

The scenario is simulated in two parts:

* item-level cache simulation of the interleaved access streams (real
  PageCache / MinIO objects), which yields the per-epoch disk traffic and
  miss ratios; and
* a rate model that converts disk traffic, prep work and GPU work into the
  epoch time — the epoch is bound by the slowest of the shared disk, the
  per-job (or shared) prep sweep, and the per-job GPU ingestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cache.minio import MinIOCache
from repro.cache.page_cache import PageCache
from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.coordl.coordinated_prep import CoordinatedEpochRunner, CoordinatedPrepPlan
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import RandomSampler
from repro.exceptions import ConfigurationError
from repro.prep.pipeline import PrepPipeline
from repro.units import safe_div


@dataclass
class HPSearchResult:
    """Steady-state outcome of one HP-search configuration.

    Attributes:
        loader_name: "dali" or "coordl".
        num_jobs: Concurrent jobs on the server.
        gpus_per_job: GPUs each job uses.
        epoch_time_s: Time for every job to finish one epoch.
        per_job_throughput: Samples/second seen by each job.
        disk_bytes_per_epoch: Bytes read from storage per epoch (all jobs).
        cache_miss_ratio: Item-level miss ratio of the shared cache.
        prep_bound / fetch_bound / gpu_bound: Which resource limits the epoch.
        staging_peak_bytes: Peak memory of the cross-job staging area
            (CoorDL only; 0 for the baseline).
    """

    loader_name: str
    num_jobs: int
    gpus_per_job: int
    epoch_time_s: float
    per_job_throughput: float
    disk_bytes_per_epoch: float
    cache_miss_ratio: float
    prep_bound: bool
    fetch_bound: bool
    gpu_bound: bool
    staging_peak_bytes: float = 0.0

    @property
    def aggregate_throughput(self) -> float:
        """Samples/second summed across all jobs."""
        return self.per_job_throughput * self.num_jobs


class HPSearchScenario:
    """Simulate ``num_jobs`` concurrent HP-search jobs on one server.

    Args:
        model: Model trained by every job.
        dataset: Shared dataset.
        server: Server the jobs run on.
        num_jobs: Number of concurrent jobs.
        gpus_per_job: GPUs per job (``num_jobs * gpus_per_job`` must not
            exceed the server's GPU count).
        cache_bytes: Override the server's cache budget.
        seed: Seed for the per-job access streams.
        fast_path: Allow the vectorised/analytic epoch simulations (exact;
            disable to force the per-item reference paths, e.g. in
            equivalence tests and benchmarks).
    """

    def __init__(self, model: ModelSpec, dataset: SyntheticDataset,
                 server: ServerConfig, num_jobs: int = 8, gpus_per_job: int = 1,
                 cache_bytes: Optional[float] = None, seed: int = 0,
                 fast_path: bool = True) -> None:
        if num_jobs <= 0 or gpus_per_job <= 0:
            raise ConfigurationError("jobs and GPUs per job must be positive")
        if num_jobs * gpus_per_job > server.num_gpus:
            raise ConfigurationError(
                f"{num_jobs} jobs x {gpus_per_job} GPUs exceed the server's "
                f"{server.num_gpus} GPUs")
        self._model = model
        self._dataset = dataset
        self._server = server if cache_bytes is None else server.with_cache_bytes(cache_bytes)
        self._num_jobs = num_jobs
        self._gpus_per_job = gpus_per_job
        self._seed = seed
        self._fast_path = fast_path
        self._rounded_totals: dict = {}

    # -- shared helpers ----------------------------------------------------

    def _prep_pipeline(self, library: str = "dali") -> PrepPipeline:
        prep = PrepPipeline.for_task(self._dataset.spec.task, library=library)
        return prep.with_scaled_cost(self._dataset.spec.prep_cost_scale)

    def _best_prep_rate(self, cores: float, gpus_for_offload: int,
                        library: str = "dali") -> float:
        """Best of CPU-only and GPU-offloaded prep for the given resources."""
        prep = self._prep_pipeline(library)
        cpu_pool = self._server.worker_pool(cores=cores, gpu_offload=False)
        rates = [cpu_pool.prep_rate(prep, self._dataset.mean_item_bytes)]
        if library == "dali":
            gpu_pool = self._server.worker_pool(cores=cores, gpu_offload=True)
            gpu_rate = gpu_pool.prep_rate(prep, self._dataset.mean_item_bytes,
                                          num_gpus_for_offload=gpus_for_offload)
            rates.append(gpu_rate * (1.0 - self._model.gpu_prep_interference))
        return max(rates)

    def _gpu_rate_per_job(self) -> float:
        return self._model.aggregate_gpu_rate(self._server.gpu, self._gpus_per_job)

    def _batch_size(self) -> int:
        return self._model.batch_size_for(self._server.gpu) * self._gpus_per_job

    # -- baseline: independent pipelines through the shared page cache ------

    def _interleaved_order(self, epoch: int) -> np.ndarray:
        """The jobs' lockstep-interleaved access stream, built in bulk.

        Identical, access for access, to the nested loops of the per-item
        reference :meth:`_simulate_shared_page_cache_epoch`: jobs advance one
        minibatch at a time (per-iteration GPU synchronisation), so the
        stream is batch 0 of every job, then batch 1 of every job, and so on,
        with the ragged final slice per job appended in job order.
        """
        num_items = len(self._dataset)
        orders = np.stack([
            RandomSampler(num_items, seed=(self._seed, job)).epoch(epoch)
            for job in range(self._num_jobs)
        ])
        batch = self._batch_size()
        full = (num_items // batch) * batch
        head = orders[:, :full].reshape(self._num_jobs, -1, batch)
        head = head.transpose(1, 0, 2).reshape(-1)
        return np.concatenate([head, orders[:, full:].reshape(-1)])

    def _page_rounded_total(self, cache: PageCache) -> float:
        """Page-rounded byte footprint of the whole dataset (memoised)."""
        page = cache.page_bytes
        cached = self._rounded_totals.get(page)
        if cached is None:
            sizes = self._dataset.item_sizes(np.arange(len(self._dataset)))
            cached = float((np.maximum(np.ceil(sizes / page), 1.0) * page).sum())
            self._rounded_totals[page] = cached
        return cached

    def _simulate_shared_page_cache_epoch(self, cache: PageCache, epoch: int,
                                          sequential_jobs: bool = False) -> float:
        """Interleave the jobs' access streams; return disk bytes for the epoch.

        Per-item reference path, kept as the executable specification the
        bulk paths of :meth:`_shared_page_cache_epoch` are tested against.
        """
        num_items = len(self._dataset)
        orders = []
        for job in range(self._num_jobs):
            sampler = RandomSampler(num_items, seed=(self._seed, job))
            orders.append(sampler.epoch(epoch))
        disk_bytes = 0.0
        batch = self._batch_size()
        # Jobs advance in lockstep one minibatch at a time, which is how the
        # per-iteration GPU synchronisation interleaves their IO in practice.
        for start in range(0, num_items, batch):
            for job in range(self._num_jobs):
                for item in orders[job][start:start + batch]:
                    item_id = int(item)
                    size = self._dataset.item_size(item_id)
                    if not cache.lookup(item_id):
                        disk_bytes += size
                        cache.admit(item_id, size)
        return disk_bytes

    def _shared_page_cache_epoch(self, cache: PageCache, epoch: int) -> float:
        """One interleaved epoch over the shared page cache (fast when allowed).

        Two bulk paths cover every regime the experiments exercise: when the
        cache can never evict during the stream
        (:meth:`~repro.cache.page_cache.PageCache.bulk_saturating_hits` —
        the fully-cached Table 7 regime) the trajectory is closed-form; in
        the *thrashing* regime (cache below the working set, the dali side
        of Fig. 9d) the whole interleaved stream is replayed through the
        segmented-LRU bulk kernel
        (:meth:`~repro.cache.page_cache.PageCache.bulk_stream_hits`).  If
        both decline, the exact sweep drives the same ``lookup``/``admit``
        state machine over the bulk-built interleaving, with the per-access
        size lookups vectorised away.  Every path yields the identical
        cache mutations, counters and disk bytes as the per-item reference
        (the miss bytes are reduced with a sequential ``cumsum``, matching
        the reference's left-to-right accumulation bit for bit).
        """
        if not self._fast_path:
            return self._simulate_shared_page_cache_epoch(cache, epoch)
        order = self._interleaved_order(epoch)
        sizes = self._dataset.item_sizes(order)
        # The interleaved stream touches every dataset item, so when the
        # page-rounded dataset footprint exceeds the capacity the
        # no-eviction precondition provably cannot hold (newly admitted
        # bytes are at least the footprint minus what is resident) and the
        # saturating probe — a sort plus a per-distinct residency scan —
        # would be wasted work on every thrashing epoch.
        if self._page_rounded_total(cache) <= cache.capacity_bytes + cache.page_bytes:
            hits = cache.bulk_saturating_hits(order, sizes)
            if hits is not None:
                return float(sizes[~hits].sum())
        hits = cache.bulk_stream_hits(order, sizes)
        if hits is not None:
            miss_sizes = sizes[~hits]
            if miss_sizes.size == 0:
                return 0.0
            return float(np.cumsum(miss_sizes)[-1])
        disk_bytes = 0.0
        lookup, admit = cache.lookup, cache.admit
        for item_id, size in zip(order.tolist(), sizes.tolist()):
            if not lookup(item_id):
                disk_bytes += size
                admit(item_id, size)
        return disk_bytes

    def run_baseline(self, measured_epoch: int = 1,
                     library: str = "dali") -> HPSearchResult:
        """Simulate uncoordinated HP search (DALI or PyTorch DL per job)."""
        cache = PageCache(self._server.cache_bytes)
        # Warm-up epoch populates the cache; the next epoch is measured.
        for epoch in range(measured_epoch):
            self._shared_page_cache_epoch(cache, epoch)
        cache.reset_stats()
        disk_bytes = self._shared_page_cache_epoch(cache, measured_epoch)
        miss_ratio = cache.stats.miss_ratio

        num_items = len(self._dataset)
        cores_per_job = self._server.physical_cores / self._num_jobs
        prep_rate_per_job = self._best_prep_rate(cores_per_job, self._gpus_per_job,
                                                 library=library)
        gpu_rate = self._gpu_rate_per_job()

        disk_time = safe_div(disk_bytes, self._server.storage.random_read_bw)
        prep_time = safe_div(num_items, prep_rate_per_job)
        gpu_time = safe_div(num_items, gpu_rate)
        epoch_time = max(disk_time, prep_time, gpu_time)
        return HPSearchResult(
            loader_name=f"{library}-uncoordinated",
            num_jobs=self._num_jobs,
            gpus_per_job=self._gpus_per_job,
            epoch_time_s=epoch_time,
            per_job_throughput=safe_div(num_items, epoch_time),
            disk_bytes_per_epoch=disk_bytes,
            cache_miss_ratio=miss_ratio,
            prep_bound=epoch_time == prep_time,
            fetch_bound=epoch_time == disk_time,
            gpu_bound=epoch_time == gpu_time,
        )

    # -- CoorDL: MinIO + coordinated prep -----------------------------------

    def _simulate_minio_epoch(self, cache: MinIOCache, epoch: int) -> float:
        """One coordinated sweep over the dataset through the MinIO cache.

        Per-item reference path (executable specification of
        :meth:`_minio_epoch`).
        """
        sampler = RandomSampler(len(self._dataset), seed=(self._seed, 0xC0))
        disk_bytes = 0.0
        for item in sampler.epoch(epoch):
            item_id = int(item)
            size = self._dataset.item_size(item_id)
            if not cache.lookup(item_id):
                disk_bytes += size
                cache.admit(item_id, size)
        return disk_bytes

    def _minio_epoch(self, cache: MinIOCache, epoch: int) -> float:
        """One coordinated sweep, vectorised when allowed (MinIO is analytic)."""
        if self._fast_path:
            sampler = RandomSampler(len(self._dataset), seed=(self._seed, 0xC0))
            order = sampler.epoch(epoch)
            sizes = self._dataset.item_sizes(order)
            hits = cache.bulk_epoch_hits(order, sizes)
            if hits is not None:
                return float(sizes[~hits].sum())
        return self._simulate_minio_epoch(cache, epoch)

    def _staging_peak_bytes(self) -> float:
        """Peak staging-area memory for one coordinated epoch."""
        plan = CoordinatedPrepPlan(self._dataset, self._num_jobs, self._batch_size(),
                                   epoch=0, seed=self._seed)
        runner = CoordinatedEpochRunner(plan, self._prep_pipeline(), self._dataset)
        runner.run_epoch_in_lockstep()
        return runner.staging.peak_bytes

    def run_coordl(self, measured_epoch: int = 1) -> HPSearchResult:
        """Simulate coordinated HP search (MinIO cache + coordinated prep)."""
        cache = MinIOCache(self._server.cache_bytes)
        for epoch in range(measured_epoch):
            self._minio_epoch(cache, epoch)
        cache.reset_stats()
        disk_bytes = self._minio_epoch(cache, measured_epoch)
        miss_ratio = cache.stats.miss_ratio

        num_items = len(self._dataset)
        # Coordinated prep uses every core on the server for one shared sweep.
        prep_rate = self._best_prep_rate(float(self._server.physical_cores),
                                         self._server.num_gpus)
        gpu_rate = self._gpu_rate_per_job()

        disk_time = safe_div(disk_bytes, self._server.storage.random_read_bw)
        prep_time = safe_div(num_items, prep_rate)
        gpu_time = safe_div(num_items, gpu_rate)
        epoch_time = max(disk_time, prep_time, gpu_time)
        return HPSearchResult(
            loader_name="coordl",
            num_jobs=self._num_jobs,
            gpus_per_job=self._gpus_per_job,
            epoch_time_s=epoch_time,
            per_job_throughput=safe_div(num_items, epoch_time),
            disk_bytes_per_epoch=disk_bytes,
            cache_miss_ratio=miss_ratio,
            prep_bound=epoch_time == prep_time,
            fetch_bound=epoch_time == disk_time,
            gpu_bound=epoch_time == gpu_time,
            staging_peak_bytes=self._staging_peak_bytes(),
        )

    def speedup(self) -> float:
        """CoorDL speedup over the uncoordinated baseline (epoch-time ratio)."""
        baseline = self.run_baseline()
        coordl = self.run_coordl()
        return safe_div(baseline.epoch_time_s, coordl.epoch_time_s)
