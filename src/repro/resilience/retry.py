"""Retry-with-backoff for transient runtime errors.

The store wraps every backend call in :func:`call_with_retry` under a
:class:`RetryPolicy`; the transient classifier (:func:`is_transient`)
recognises the errors that experience says go away on their own — SQLite
lock/busy contention, interruptible-syscall ``OSError``\\ s, and the fault
injector's :class:`~repro.exceptions.TransientFaultError` — and nothing
else.  Everything non-transient propagates on the first attempt so real
bugs are never silently retried into timeouts.

Backoff is deterministic (no jitter): delays are a pure function of the
policy, which keeps chaos runs reproducible and the total worst-case stall
bounded and computable (``sum(policy.delays())``).
"""

from __future__ import annotations

import errno
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.exceptions import ConfigurationError, TransientFaultError

#: ``OSError`` errnos treated as transient (retry-worthy) contention.
TRANSIENT_ERRNOS = frozenset({errno.EAGAIN, errno.EBUSY, errno.EINTR})

#: Substrings marking a transient ``sqlite3.OperationalError``.
_SQLITE_TRANSIENT_MARKERS = ("locked", "busy")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient failure.

    Args:
        max_attempts: Total attempts including the first (so ``1`` disables
            retrying entirely).
        backoff_s: Sleep before the first retry.
        multiplier: Backoff growth factor per retry.
        max_backoff_s: Ceiling on any single sleep.

    The defaults retry three times over ~35 ms — enough to outlive a
    WAL-mode writer lock without turning a genuinely broken disk into a
    hang.
    """

    max_attempts: int = 4
    backoff_s: float = 0.005
    multiplier: float = 2.0
    max_backoff_s: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("retry backoff seconds must be >= 0")
        if self.multiplier < 1:
            raise ConfigurationError("retry multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``max_attempts - 1`` values)."""
        delay = self.backoff_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_backoff_s)
            delay *= self.multiplier


#: Retrying disabled: a single attempt, no sleeps.
NO_RETRY = RetryPolicy(max_attempts=1)


def is_transient(exc: BaseException) -> bool:
    """True for errors worth retrying; everything else fails fast."""
    if isinstance(exc, TransientFaultError):
        return True
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return any(marker in message for marker in _SQLITE_TRANSIENT_MARKERS)
    if isinstance(exc, OSError):
        return exc.errno in TRANSIENT_ERRNOS
    return False


def call_with_retry(fn: Callable[[], object], *,
                    policy: RetryPolicy = RetryPolicy(),
                    classify: Callable[[BaseException], bool] = is_transient,
                    on_retry: Optional[Callable[[BaseException], None]]
                    = None,
                    sleep: Callable[[float], None] = time.sleep) -> object:
    """Call ``fn`` retrying transient failures under ``policy``.

    ``on_retry`` fires once per retry *before* the backoff sleep (the store
    counts its retries there).  The last transient error propagates
    unchanged when the budget runs out; non-transient errors propagate from
    the first attempt.  ``sleep`` is injectable so tests can run schedules
    without wall-clock delay.
    """
    delays = policy.delays()
    while True:
        try:
            return fn()
        except BaseException as exc:  # noqa: BLE001 — classified below
            if not classify(exc):
                raise
            try:
                delay = next(delays)
            except StopIteration:
                raise exc from None
            if on_retry is not None:
                on_retry(exc)
            if delay > 0:
                sleep(delay)
