"""Benchmarks: vectorised Fig. 3 sweep vs reference, and parallel vs serial.

The first benchmark runs the identical sweep grid (ResNet18, DALI-shuffle +
CoorDL, the six cache fractions of Fig. 3, two epochs each) twice through
:class:`~repro.sim.sweep.SweepRunner` — once with the vectorised epoch fast
path, once forced onto the per-batch ``fetch_batch`` loop — and asserts that

* every simulated epoch time agrees within 1e-9 (the fast path is a
  numerical fast path, not an approximation), and
* the vectorised sweep is at least 3x faster end to end.

The second runs a 16-point grid serially and through the ``workers=4``
spawn pool, asserts the two results are **byte-identical** (snapshot
comparison — the pool is not allowed to change a single bit), and that the
pooled run is at least 2x faster when the machine actually has 4 cores.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.experiments.base import SWEEP_SCALE
from repro.experiments.fig3_cache_sweep import DEFAULT_FRACTIONS
from repro.sim.sweep import SweepRunner

#: Wall-clock advantage the vectorised sweep must demonstrate.  Overridable
#: so shared CI runners (noisy neighbours, throttled cores) can keep the
#: exactness gate hard while softening the timing gate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Best-of repetitions per path (damps scheduler noise in the ratio).
REPEATS = 2

#: Wall-clock advantage the ``workers=4`` pool must demonstrate over the
#: serial run of the same grid (env-overridable like MIN_SPEEDUP; only
#: asserted on machines with at least PARALLEL_WORKERS cores).
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "2.0"))

#: Pool size of the parallel-sweep benchmark.
PARALLEL_WORKERS = 4

#: Dataset scale of the parallel benchmark grid — heavy enough per point
#: that the sweep dominates worker spawn + per-worker dataset rebuild.
PARALLEL_SCALE = 1.0 / 10.0


def _fig3_sweep(fast_path: bool) -> Tuple[float, Dict[tuple, List[float]]]:
    """Run the Fig. 3 grid; return (elapsed seconds, per-point epoch times)."""
    runner = SweepRunner(config_ssd_v100, scale=SWEEP_SCALE, seed=0,
                         fast_path=fast_path)
    points = SweepRunner.grid(models=[RESNET18],
                              loaders=["dali-shuffle", "coordl"],
                              cache_fractions=DEFAULT_FRACTIONS,
                              dataset="openimages", num_epochs=2)
    start = time.perf_counter()
    # workers=0 pins the serial executor: this benchmark isolates the
    # vectorised-vs-reference ratio, even when REPRO_SWEEP_WORKERS is set.
    sweep = runner.run(points, workers=0)
    elapsed = time.perf_counter() - start
    epoch_times = {
        (record.point.loader, record.point.cache_fraction):
            [epoch.epoch_time_s for epoch in record.run.epochs]
        for record in sweep
    }
    return elapsed, epoch_times


def test_vectorized_fig3_sweep_is_3x_faster_and_exact(benchmark):
    slow_elapsed = float("inf")
    for _ in range(REPEATS):
        elapsed, slow_times = _fig3_sweep(fast_path=False)
        slow_elapsed = min(slow_elapsed, elapsed)

    fast_runs = [_fig3_sweep(fast_path=True) for _ in range(REPEATS - 1)]
    fast_times = benchmark.pedantic(
        lambda: _fig3_sweep(fast_path=True), rounds=1, iterations=1)[1]
    fast_elapsed = min([r[0] for r in fast_runs]
                       + [benchmark.stats.stats.min])

    assert set(fast_times) == set(slow_times)
    worst = max(abs(a - b)
                for key in slow_times
                for a, b in zip(slow_times[key], fast_times[key]))
    assert worst <= 1e-9, f"fast path diverged from reference by {worst}"

    speedup = slow_elapsed / fast_elapsed
    print(f"\nFig. 3 sweep: per-batch {slow_elapsed * 1e3:.0f} ms, "
          f"vectorized {fast_elapsed * 1e3:.0f} ms -> {speedup:.2f}x "
          f"(max epoch-time deviation {worst:.2e})")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized sweep only {speedup:.2f}x faster (need {MIN_SPEEDUP}x)")


def _parallel_grid():
    """A 16-point training grid (2 models x 2 loaders x 4 cache sizes)."""
    return SweepRunner.grid(models=[RESNET18, ALEXNET],
                            loaders=["dali-shuffle", "coordl"],
                            cache_fractions=(0.25, 0.5, 0.75, 1.0),
                            dataset="openimages", num_epochs=3)


def _timed_sweep(workers: int):
    """Run the parallel-benchmark grid; return (elapsed s, snapshot)."""
    runner = SweepRunner(config_ssd_v100, scale=PARALLEL_SCALE, seed=0)
    start = time.perf_counter()
    sweep = runner.run(_parallel_grid(), workers=workers)
    return time.perf_counter() - start, sweep.snapshot()


def test_parallel_sweep_is_byte_identical_and_2x_faster(benchmark):
    serial_elapsed, serial_snapshot = _timed_sweep(workers=0)
    parallel_snapshot = benchmark.pedantic(
        lambda: _timed_sweep(workers=PARALLEL_WORKERS), rounds=1, iterations=1)[1]
    parallel_elapsed = benchmark.stats.stats.min

    # The exactness gate is unconditional: pooled results must be
    # bit-for-bit the serial ones, reassembled in input order.
    assert parallel_snapshot == serial_snapshot, (
        "workers=4 sweep diverged from the serial bytes")

    speedup = serial_elapsed / parallel_elapsed
    cores = os.cpu_count() or 1
    print(f"\n16-point sweep: serial {serial_elapsed:.2f} s, "
          f"workers={PARALLEL_WORKERS} {parallel_elapsed:.2f} s -> "
          f"{speedup:.2f}x on {cores} cores (exact)")
    if cores < PARALLEL_WORKERS:
        print(f"(speedup gate skipped: {cores} < {PARALLEL_WORKERS} cores)")
        return
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"parallel sweep only {speedup:.2f}x faster "
        f"(need {MIN_PARALLEL_SPEEDUP}x on {cores} cores)")
