"""The long-running what-if sweep daemon (stdlib HTTP, JSON in/out).

:class:`ServeDaemon` holds the serving substrate open across requests —
one shared :class:`~repro.store.SweepStore` (every answer lands in it;
warm questions are file reads), one shared
:class:`~repro.store.PersistentPool` (spawned once, reused by every
query) and one :class:`~repro.serve.batcher.CoalescingBatcher` (overlapping
concurrent queries coalesce into shared sweep runs) — and answers JSON
over HTTP through a :class:`http.server.ThreadingHTTPServer` (one thread
per connection; all shared state is lock-guarded by construction).

Endpoints (all payloads defined in :mod:`repro.serve.protocol`):

====================  ====  =====================================================
``/v1/health``        GET   liveness + configuration echo
``/v1/stats``         GET   store / batcher / latency statistics
``/v1/whatif``        POST  ``{"runner": .., "points": [..], "deadline_s": ..}``
                            → per-point records (fully-invertible snapshots),
                            with explicit ``timed_out`` / ``error`` markers
``/v1/experiment``    POST  ``{"id": "fig3", "scale": ..}`` → the registered
                            experiment's tidy table (shared store + pool)
``/v1/report``        POST  ``{"scale": .., "only": [..]}`` → EXPERIMENTS.md
                            markdown (shared store + pool)
====================  ====  =====================================================

Deadlines are per-request (``deadline_s``; the daemon's default applies
when absent): a request whose points are still simulating when its
deadline passes gets its completed points plus ``timed_out`` markers for
the rest — the simulation keeps running and its results land in the
store, so asking again is cheap.  Responses carry request latency; the
daemon aggregates latencies for ``/v1/stats`` percentiles (what the CI
serve gate uploads as ``BENCH_serve.json``).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.report_generator import generate
from repro.serve.batcher import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_WINDOW_S,
    CoalescingBatcher,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    points_from_wire,
    record_to_wire,
    runner_from_wire,
)
from repro.store import PersistentPool, StoreArg, resolve_store

#: Default per-request deadline when a query does not carry one.  Generous
#: — it exists so an abandoned connection can never pin a request thread
#: forever, not to race healthy queries.
DEFAULT_DEADLINE_S = 300.0

#: Maximum accepted request body (simple flood guard; grids are small).
MAX_BODY_BYTES = 8 * 1024 * 1024


def latency_percentiles(latencies_s: List[float]) -> Dict[str, float]:
    """p50/p90/p99/max of a latency sample, in milliseconds.

    Nearest-rank percentiles over the sorted sample — no interpolation,
    so tiny samples stay honest.  Empty input returns an empty dict.
    """
    if not latencies_s:
        return {}
    ordered = sorted(latencies_s)
    def rank(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index] * 1000.0
    return {
        "count": len(ordered),
        "p50_ms": round(rank(0.50), 3),
        "p90_ms": round(rank(0.90), 3),
        "p99_ms": round(rank(0.99), 3),
        "max_ms": round(ordered[-1] * 1000.0, 3),
    }


class ServeDaemon:
    """One serving process: store + pool + batcher + HTTP front end.

    Args:
        host / port: Bind address; ``port=0`` picks a free port (the
            in-process test harness uses exactly that), readable from
            :attr:`address` / :attr:`url` after construction.
        store: Shared result store (:class:`~repro.store.StoreArg`
            semantics: a store, a directory path or ``sqlite://PATH``
            URI, ``None`` for the environment default, ``False`` for no
            store).  The SQLite backend's WAL mode gives the serving
            threads real concurrent reads — warm queries never serialise
            behind a writer.
        workers: Size of the shared :class:`~repro.store.PersistentPool`
            simulations fan out over; ``0`` simulates on batch threads
            (in-process — what the tests use).
        window_s / max_attempts: Batcher knobs (see
            :class:`~repro.serve.batcher.CoalescingBatcher`).
        default_deadline_s: Applied to queries that carry no
            ``deadline_s``.

    Use as a context manager, or :meth:`start` / :meth:`close` explicitly.
    :meth:`serve_forever` blocks (the CLI's ``repro serve``);
    :meth:`start` serves on a background thread (tests).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8421, *,
                 store: StoreArg = None, workers: int = 0,
                 window_s: float = DEFAULT_WINDOW_S,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 default_deadline_s: float = DEFAULT_DEADLINE_S) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        self._store = resolve_store(store)
        self._pool = PersistentPool(workers) if workers else None
        self._batcher = CoalescingBatcher(
            store=self._store, pool=self._pool, workers=0,
            window_s=window_s, max_attempts=max_attempts)
        self._default_deadline_s = default_deadline_s
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._latencies_s: List[float] = []
        self.requests = 0
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args: Any) -> None:  # quiet by default
                pass

            def do_GET(self) -> None:
                daemon._dispatch(self, "GET")

            def do_POST(self) -> None:
                daemon._dispatch(self, "POST")

        self._http = ThreadingHTTPServer((host, port), Handler)
        self._http.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """Actually-bound (host, port) — resolves ``port=0`` requests."""
        return self._http.server_address[0], self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def store(self):
        """The shared store (``None`` when serving store-less)."""
        return self._store

    @property
    def pool(self) -> Optional[PersistentPool]:
        """The shared persistent pool (``None`` when ``workers=0``)."""
        return self._pool

    @property
    def batcher(self) -> CoalescingBatcher:
        """The shared coalescing batcher."""
        return self._batcher

    def start(self) -> "ServeDaemon":
        """Serve on a background thread (idempotent); returns self."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._http.serve_forever, name="repro-serve-http",
                daemon=True)
            self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self._http.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting, drain the batcher, shut the pool down."""
        self._http.shutdown()
        self._http.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(5.0)
            self._serve_thread = None
        self._batcher.close()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request handling ----------------------------------------------------

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        start = time.monotonic()
        try:
            status, payload = self._route(handler, method)
        except ConfigurationError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # never let a handler thread die silently
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.monotonic() - start
        payload.setdefault("protocol", PROTOCOL_VERSION)
        payload.setdefault("elapsed_s", round(elapsed, 6))
        body = json.dumps(payload).encode("utf-8")
        with self._lock:
            self.requests += 1
            self._latencies_s.append(elapsed)
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _route(self, handler: BaseHTTPRequestHandler,
               method: str) -> Tuple[int, Dict[str, Any]]:
        path = handler.path.split("?", 1)[0].rstrip("/")
        if method == "GET" and path == "/v1/health":
            return 200, self._health_payload()
        if method == "GET" and path == "/v1/stats":
            return 200, self._stats_payload()
        if method == "POST" and path == "/v1/whatif":
            return self._handle_whatif(self._read_body(handler))
        if method == "POST" and path == "/v1/experiment":
            return self._handle_experiment(self._read_body(handler))
        if method == "POST" and path == "/v1/report":
            return self._handle_report(self._read_body(handler))
        return 404, {"error": f"no such endpoint: {method} {path}"}

    def _read_body(self, handler: BaseHTTPRequestHandler) -> Dict[str, Any]:
        length = int(handler.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ConfigurationError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body over {MAX_BODY_BYTES} bytes")
        raw = handler.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise ConfigurationError("request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    # -- endpoints -----------------------------------------------------------

    def _health_payload(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "store": (str(self._store.directory)
                      if self._store is not None else None),
            "store_backend": (self._store.backend.kind
                              if self._store is not None else None),
            "pool_workers": self._pool.workers if self._pool else 0,
        }

    def _stats_payload(self) -> Dict[str, Any]:
        with self._lock:
            latencies = list(self._latencies_s)
            requests = self.requests
        payload: Dict[str, Any] = {
            "requests": requests,
            "latency": latency_percentiles(latencies),
            "batcher": self._batcher.stats(),
        }
        if self._store is not None:
            payload["store"] = self._store.stats().to_dict()
        return payload

    def _handle_whatif(self,
                       body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        runner = runner_from_wire(body.get("runner"))
        points = points_from_wire(body.get("points"))
        deadline_s = body.get("deadline_s", self._default_deadline_s)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise ConfigurationError("deadline_s must be positive")
        ticket = self._batcher.submit(runner, points)
        outcomes = ticket.wait(deadline_s)
        results = []
        for outcome in outcomes:
            item: Dict[str, Any] = {"status": outcome.status}
            if outcome.record is not None:
                item["record"] = record_to_wire(outcome.record)
            if outcome.error is not None:
                item["error"] = outcome.error
            results.append(item)
        return 200, {
            "results": results,
            "timed_out": any(o.status == "timed_out" for o in outcomes),
        }

    def _handle_experiment(self,
                           body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        experiment_id = str(body.get("id", ""))
        if not experiment_id:
            raise ConfigurationError("'id' names the experiment to run")
        kwargs: Dict[str, Any] = {}
        if "scale" in body and registry.accepts_kwarg(experiment_id, "scale"):
            kwargs["scale"] = float(body["scale"])
        for knob, value in (("store", self._store), ("pool", self._pool)):
            if value is not None and registry.accepts_kwarg(experiment_id, knob):
                kwargs[knob] = value
        result = registry.run_experiment(experiment_id, **kwargs)
        return 200, {
            "id": result.experiment_id,
            "title": result.title,
            "columns": result.columns,
            "rows": result.rows,
            "notes": result.notes,
            "table": result.format_table(),
        }

    def _handle_report(self,
                       body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        kwargs: Dict[str, Any] = {"store": self._store or False,
                                  "pool": self._pool}
        if "scale" in body:
            kwargs["scale"] = float(body["scale"])
        only = body.get("only")
        if only is not None:
            if (not isinstance(only, list)
                    or not all(isinstance(x, str) for x in only)):
                raise ConfigurationError("'only' must be a list of experiment ids")
            kwargs["only"] = only
        with tempfile.NamedTemporaryFile("r", suffix=".md") as sink:
            markdown = generate(sink.name, **kwargs)
        return 200, {"markdown": markdown}
