"""Unit tests for GPU specs, the model zoo, server configs and the network."""

import pytest

from repro import units
from repro.cluster.configs import (
    config_hdd_1080ti,
    config_high_cpu_v100,
    config_ssd_v100,
    get_server_config,
)
from repro.cluster.network import NetworkLink, forty_gbps_ethernet, ten_gbps_ethernet
from repro.compute.gpu import GTX_1080TI, V100, get_gpu
from repro.compute.model_zoo import (
    ALL_STALL_MODELS,
    BERT_LARGE,
    RESNET18,
    RESNET50,
    get_model,
    model_names,
)
from repro.exceptions import ConfigurationError


class TestGPUs:
    def test_v100_faster_than_1080ti(self):
        assert V100.compute_scale > GTX_1080TI.compute_scale
        assert V100.memory_bytes > GTX_1080TI.memory_bytes

    def test_lookup_case_insensitive(self):
        assert get_gpu("v100") is V100
        assert get_gpu("1080Ti") is GTX_1080TI
        with pytest.raises(ConfigurationError):
            get_gpu("h100")

    def test_scaled_gpu_for_whatif(self):
        faster = V100.scaled(2.0)
        assert faster.compute_scale == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            V100.scaled(0)


class TestModelZoo:
    def test_paper_models_present(self):
        names = model_names()
        for expected in ("resnet18", "resnet50", "alexnet", "shufflenetv2",
                         "squeezenet", "mobilenetv2", "vgg11", "ssd-res18",
                         "audio-m5", "bert-large", "gnmt"):
            assert expected in names

    def test_light_models_have_higher_ingestion_rates(self):
        # AlexNet/ShuffleNet consume samples much faster than ResNet50/VGG11.
        assert get_model("alexnet").gpu_rate_v100 > 3 * get_model("vgg11").gpu_rate_v100

    def test_gpu_rate_scales_with_gpu_and_count(self):
        single = RESNET18.gpu_rate(V100)
        assert RESNET18.gpu_rate(GTX_1080TI) < single
        eight = RESNET18.aggregate_gpu_rate(V100, 8)
        assert 7.0 * single < eight < 8.0 * single  # sync overhead < 1 GPU worth

    def test_gpu_prep_interference_lowers_compute_rate(self):
        assert RESNET50.gpu_rate(V100, gpu_prep_active=True) < RESNET50.gpu_rate(V100)

    def test_batch_size_depends_on_gpu_memory(self):
        assert RESNET50.batch_size_for(V100) == 512
        assert RESNET50.batch_size_for(GTX_1080TI) < 512

    def test_language_models_flagged_gpu_bound(self):
        assert BERT_LARGE.is_gpu_bound_language_model
        assert not RESNET18.is_gpu_bound_language_model
        assert BERT_LARGE not in ALL_STALL_MODELS

    def test_raw_byte_demand_matches_rate_times_size(self):
        demand = RESNET18.raw_bytes_rate_demand(V100, 8, 150_000.0)
        assert demand == pytest.approx(RESNET18.aggregate_gpu_rate(V100, 8) * 150_000.0)

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError):
            get_model("transformer-xxl")


class TestNetwork:
    def test_forty_gbps_effective_bandwidth(self):
        link = forty_gbps_ethernet()
        assert link.effective_bandwidth == pytest.approx(units.Gbps(40) * 0.9)

    def test_network_faster_than_ssd_for_typical_items(self):
        """The premise of partitioned caching (Sec. 4.2)."""
        link = forty_gbps_ethernet()
        from repro.storage.device import sata_ssd
        item = 300_000.0
        assert link.transfer_time(item) < sata_ssd().read_time(item)

    def test_ten_gbps_slower_than_forty(self):
        assert ten_gbps_ethernet().transfer_time(1e6) > forty_gbps_ethernet().transfer_time(1e6)

    def test_utilisation(self):
        link = forty_gbps_ethernet()
        assert link.utilisation(link.bandwidth, 1.0) == pytest.approx(1.0)
        assert link.utilisation(0.0, 1.0) == 0.0
        assert link.utilisation(1.0, 0.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(bandwidth=0)
        with pytest.raises(ConfigurationError):
            NetworkLink(protocol_efficiency=0)
        with pytest.raises(ConfigurationError):
            forty_gbps_ethernet().transfer_time(-1)


class TestServerConfigs:
    def test_paper_sku_parameters(self):
        ssd = config_ssd_v100()
        hdd = config_hdd_1080ti()
        for server in (ssd, hdd):
            assert server.num_gpus == 8
            assert server.physical_cores == 24
            assert server.dram_bytes == units.GiB(500)
            assert server.cores_per_gpu == 3
        assert ssd.gpu is V100
        assert hdd.gpu is GTX_1080TI
        assert ssd.storage.random_read_bw > hdd.storage.random_read_bw

    def test_high_cpu_variant(self):
        server = config_high_cpu_v100()
        assert server.physical_cores == 32
        assert server.vcpus == 64

    def test_lookup_by_name(self):
        assert get_server_config("Config-SSD-V100").name == "Config-SSD-V100"
        with pytest.raises(ConfigurationError):
            get_server_config("dgx-2")

    def test_with_helpers_return_modified_copies(self):
        server = config_ssd_v100()
        smaller = server.with_cache_bytes(units.GiB(100))
        assert smaller.cache_bytes == units.GiB(100)
        assert server.cache_bytes != smaller.cache_bytes
        assert server.with_gpus(4).num_gpus == 4
        assert server.with_cores(32).physical_cores == 32

    def test_worker_pool_validation(self):
        server = config_ssd_v100()
        pool = server.worker_pool(cores=6)
        assert pool.physical_cores == 6
        with pytest.raises(ConfigurationError):
            server.worker_pool(cores=100)

    def test_invalid_server_rejected(self):
        server = config_ssd_v100()
        with pytest.raises(ConfigurationError):
            server.with_cache_bytes(units.GiB(10_000))  # cache > DRAM
