#!/usr/bin/env python3
"""CI gate for the content-addressed sweep result store (``repro.store``).

Runs small reference grids twice against one store directory and enforces
the store contract end to end:

* the cold pass simulates every point (all misses) and populates the store;
* the warm pass performs **zero simulations** (every point is a store hit —
  simulation is fenced off by instrumentation, not inferred from timing);
* the warm :meth:`~repro.sim.sweep.SweepResult.snapshot` is byte-identical
  to the cold one.

With ``--serve`` the same contract is enforced *through the serve daemon*
(``repro.serve``): every committed golden grid is fetched twice over HTTP
from an in-process :class:`~repro.serve.ServeDaemon`; the cold pass may
simulate, the warm pass must simulate nothing, and both passes must
rehydrate byte-identical to the committed ``tests/golden`` snapshots.
Request latency percentiles land in ``BENCH_serve.json``.

Store statistics land in ``BENCH_store.json`` at the repository root so CI
can upload them alongside ``BENCH_sweep.json``.

Run as ``make store-check`` / ``make serve-check`` (or
``PYTHONPATH=src python tools/store_check.py [--serve]``).  The store
directory comes from ``REPRO_SWEEP_STORE`` when set (what the CI leg
does), else a temporary directory.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.harness import (  # noqa: E402
    GOLDEN_GRIDS,
    load_golden,
    snapshot_diff,
)
from repro.sim.sweep import SweepRunner  # noqa: E402
from repro.store import STORE_ENV_VAR, SweepStore  # noqa: E402

#: Grids the gate replays (cheap but covering all three record kinds).
CHECKED_GRIDS = ("fig3_small", "fig9b_small", "tab7_small")

#: Where the committed golden snapshots live.
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Where the store statistics land (repo root, uploaded as a CI artifact).
REPORT_PATH = REPO_ROOT / "BENCH_store.json"

#: Where the serve gate's latency percentiles land.
SERVE_REPORT_PATH = REPO_ROOT / "BENCH_serve.json"


def run_gate(directory: pathlib.Path) -> dict:
    """Run the cold/warm passes; return the stats payload (raises on fail)."""
    simulated = []
    original_run_point = SweepRunner._run_point

    def counting_run_point(self, point):
        simulated.append(point)
        return original_run_point(self, point)

    SweepRunner._run_point = counting_run_point
    try:
        grids = {name: GOLDEN_GRIDS[name] for name in CHECKED_GRIDS}
        # workers=0 pins the serial executor: the gate counts simulations
        # through a parent-process instrumentation hook that spawn workers
        # would not see, and the store contract is worker-count-invariant
        # anyway (tests/test_store.py covers workers=0/1/4).
        cold_store = SweepStore(directory)
        start = time.perf_counter()
        cold = {name: grid.build_runner().run(grid.points(), workers=0,
                                              store=cold_store).snapshot()
                for name, grid in grids.items()}
        cold_s = time.perf_counter() - start
        cold_simulated = len(simulated)
        if cold_store.hits or cold_store.puts != cold_simulated:
            raise AssertionError(
                f"cold pass expected all misses: {cold_store.hits} hits, "
                f"{cold_store.puts} puts, {cold_simulated} simulations")

        warm_store = SweepStore(directory)
        start = time.perf_counter()
        warm = {name: grid.build_runner().run(grid.points(), workers=0,
                                              store=warm_store).snapshot()
                for name, grid in grids.items()}
        warm_s = time.perf_counter() - start
        warm_simulated = len(simulated) - cold_simulated
        if warm_simulated or warm_store.misses:
            raise AssertionError(
                f"warm pass simulated {warm_simulated} points / "
                f"{warm_store.misses} store misses (expected all hits)")
        for name in grids:
            diffs = snapshot_diff(cold[name], warm[name])
            if diffs:
                raise AssertionError(
                    f"{name}: warm snapshot diverged from cold "
                    f"(first differences: {diffs})")
    finally:
        SweepRunner._run_point = original_run_point

    stats = warm_store.stats()
    return {
        "schema": "repro-store-gate/1",
        "grids": list(CHECKED_GRIDS),
        "points": cold_simulated,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "store": stats.to_dict(),
    }


def run_serve_gate(directory: pathlib.Path) -> dict:
    """Golden round-trip through the serve daemon (raises on fail).

    Every committed golden grid, fetched twice over HTTP from one
    in-process daemon: the warm pass must do zero simulations, and both
    passes must rehydrate byte-identical to ``tests/golden``.
    """
    from repro.serve import ServeClient, ServeDaemon

    simulated = []
    original_run_point = SweepRunner._run_point

    def counting_run_point(self, point):
        simulated.append(point)
        return original_run_point(self, point)

    # workers=0 keeps simulation on the daemon's batch threads, inside this
    # process, so the counting hook actually fences it.
    SweepRunner._run_point = counting_run_point
    latencies = {"cold_s": [], "warm_s": []}
    try:
        with ServeDaemon(port=0, store=directory) as daemon:
            client = ServeClient(daemon.url)
            for passname in ("cold_s", "warm_s"):
                before = len(simulated)
                for name, grid in GOLDEN_GRIDS.items():
                    runner = grid.build_runner()
                    start = time.perf_counter()
                    results = client.whatif(runner, grid.points())
                    latencies[passname].append(time.perf_counter() - start)
                    bad = [r.status for r in results if r.status != "ok"]
                    if bad:
                        raise AssertionError(
                            f"{name} ({passname}): non-ok statuses {bad}")
                    served = {"records": [r.record.snapshot()
                                          for r in results]}
                    diffs = snapshot_diff(load_golden(name, GOLDEN_DIR),
                                          served)
                    if diffs:
                        raise AssertionError(
                            f"{name} ({passname}): served records diverge "
                            f"from the committed golden (first: {diffs})")
                if passname == "warm_s" and len(simulated) > before:
                    raise AssertionError(
                        f"warm serve pass simulated {len(simulated) - before} "
                        "points (expected pure store reads)")
            stats = client.stats()
    finally:
        SweepRunner._run_point = original_run_point

    return {
        "schema": "repro-serve-gate/1",
        "grids": sorted(GOLDEN_GRIDS),
        "points": len(simulated),
        "cold_s": round(sum(latencies["cold_s"]), 6),
        "warm_s": round(sum(latencies["warm_s"]), 6),
        "latency": stats["latency"],
        "batcher": stats["batcher"],
        "store": stats.get("store", {}),
    }


def main() -> int:
    serve = "--serve" in sys.argv[1:]
    env_dir = os.environ.get(STORE_ENV_VAR, "").strip()
    gate = run_serve_gate if serve else run_gate
    if env_dir:
        # A fresh scratch store *under* the configured directory: the gate's
        # cold pass must start from zero entries, and the ambient store may
        # already hold these exact grids (the golden tests populate it when
        # the whole suite runs store-backed — or a previous gate run did).
        pathlib.Path(env_dir).mkdir(parents=True, exist_ok=True)
        scratch = tempfile.mkdtemp(prefix="store-gate-", dir=env_dir)
        try:
            payload = gate(pathlib.Path(scratch))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
    else:
        with tempfile.TemporaryDirectory() as scratch:
            payload = gate(pathlib.Path(scratch) / "sweep-store")
    if serve:
        SERVE_REPORT_PATH.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"serve-check: {payload['points']} points over "
              f"{len(payload['grids'])} golden grids served byte-identical "
              f"over HTTP; warm pass pure store reads (cold "
              f"{payload['cold_s']:.2f} s, warm {payload['warm_s']:.2f} s); "
              f"latency -> {SERVE_REPORT_PATH.name}")
        return 0
    REPORT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                           encoding="utf-8")
    print(f"store-check: {payload['points']} points over "
          f"{len(payload['grids'])} grids; warm pass all hits and "
          f"byte-identical (cold {payload['cold_s']:.2f} s, warm "
          f"{payload['warm_s']:.2f} s, {payload['speedup']}x); "
          f"stats -> {REPORT_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
