# Development entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src), so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-workers bench bench-json bench-smoke bench-parallel \
        bench-store docs-check store-check store-check-sqlite serve-check \
        failure-check chaos-check dist-check check

## Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q tests

## Tier-1 suite with every sweep fanned out over a 2-process worker pool
## (results are byte-identical by contract; this leg proves it end to end).
test-workers:
	REPRO_SWEEP_WORKERS=2 $(PYTHON) -m pytest -x -q tests

## Reproduce the paper's tables/figures and the sweep-speed benchmarks.
## Writes machine-readable per-grid results to BENCH_sweep.json in the
## repo root (locally and in CI alike).
bench:
	$(PYTHON) -m pytest -q benchmarks -s

## Alias: regenerate BENCH_sweep.json from just the sweep-speed gates
## (smoke + parallel) without the full table/figure benchmarks.
bench-json: bench-smoke bench-parallel

## Quick benchmark smoke: the vectorised-vs-reference sweep speed gates
## (Fig. 3, Fig. 9b, and the warm/thrashing segmented-LRU kernel gate) —
## fast enough to run on every push.  The heavier parallel-vs-serial gate
## lives in bench-parallel (and in full `make bench`).
bench-smoke:
	$(PYTHON) -m pytest -q -s -k "not parallel" \
	    benchmarks/test_sweep_speed.py \
	    benchmarks/test_distributed_sweep_speed.py

## Parallel-vs-serial sweep gate: a 16-point grid through workers=4 must be
## byte-identical to the serial run, and >=2x faster on a >=4-core machine.
bench-parallel:
	$(PYTHON) -m pytest -q -s -k "parallel" benchmarks/test_sweep_speed.py

## Verify every public __all__ symbol (repro, repro.sim, repro.coordl,
## repro.cache, repro.store) is documented in docs/API.md.
docs-check:
	$(PYTHON) tools/docs_check.py

## Result-store round-trip gate, run against BOTH backends (the JSON
## directory and the sqlite:// database): cold grid run populates the
## store, warm run must be all hits, zero simulations and byte-identical;
## per-backend store stats and a json-vs-sqlite comparison land in
## BENCH_store.json (repo root).
store-check:
	$(PYTHON) tools/store_check.py

## Alias: the same gate against only the SQLite backend.
store-check-sqlite:
	$(PYTHON) tools/store_check.py --backend sqlite

## Backend micro-benchmark: a 1000-entry warm read+stats workload where the
## SQLite backend must beat the JSON directory by
## $$REPRO_BENCH_MIN_SQLITE_SPEEDUP (default 3x); results merge into
## BENCH_sweep.json.
bench-store:
	$(PYTHON) -m pytest -q -s benchmarks/test_store_backends.py

## Serve-layer gate: the concurrency + fault test harness for the what-if
## daemon and the write-once store, then every committed golden grid served
## twice over HTTP from an in-process daemon (warm pass must be pure store
## reads, both passes byte-identical to tests/golden).  Latency percentiles
## land in BENCH_serve.json (repo root).
serve-check:
	$(PYTHON) -m pytest -x -q tests/test_serve.py tests/test_store_concurrency.py
	$(PYTHON) tools/store_check.py --serve

## Failure & elasticity scenario gate: the detector/scenario unit and
## property tests, the failure golden grids at workers=0/1/4 and through
## both store backends, then the two failure grids served twice over HTTP
## (warm pass must be pure store reads, byte-identical to tests/golden).
failure-check:
	$(PYTHON) -m pytest -x -q tests/test_failure.py \
	    tests/test_failure_scenarios.py tests/test_golden_sweeps.py
	$(PYTHON) tools/store_check.py --serve \
	    --grids fig_crash_small fig_elastic_small

## Resilience gate: the chaos test suite (deterministic fault injection,
## supervised-pool kill/respawn recovery, store degradation ladders, serve
## admission control), then the store round-trip gate re-run under the
## committed fault plan (transient faults must be absorbed by retries),
## then every committed golden grid replayed under that plan through a
## supervised worker pool on both backends — byte-identical despite
## SIGKILLed workers and injected store errors.  Delivered-fault counters
## land in BENCH_resilience.json (repo root).
chaos-check:
	$(PYTHON) -m pytest -x -q tests/test_resilience.py
	REPRO_FAULT_PLAN=tools/fault_plans/ci.json $(PYTHON) tools/store_check.py
	$(PYTHON) tools/chaos_check.py

## Distributed-fabric gate: the protocol/executor/agent test suite, then
## every committed golden grid replayed through a DistExecutor over real
## `python -m repro dist worker` subprocesses at hosts=1/2 x local
## workers=0/1/2 — byte-identical at every topology — and once more per
## grid with one agent SIGKILLed mid-sweep under a host_kills fault plan
## (chunks reassigned; zero lost or duplicated records per the store
## trace checker).  Topology timings and steal/reassignment counters land
## in BENCH_dist.json (repo root).
dist-check:
	$(PYTHON) -m pytest -x -q tests/test_dist.py
	$(PYTHON) tools/dist_check.py

## Everything the CI gate's main leg runs (the parallel-workers, store and
## serve legs add `make test-workers bench-smoke bench-parallel` under
## REPRO_SWEEP_WORKERS=2, `make test store-check` under REPRO_SWEEP_STORE,
## `make serve-check`, `make failure-check`, and `make chaos-check`
## respectively).
check: test docs-check bench-smoke store-check
