"""Native PyTorch DataLoader baseline.

Characteristics reproduced from the paper (Sec. 2, Appendix B.2/E):

* items are read as individual files in a fresh random order every epoch;
* caching is delegated entirely to the OS page cache (LRU);
* pre-processing uses Pillow/TorchVision on CPU only — roughly 2x slower per
  sample than DALI's nvJPEG path;
* fetch and prep are parallelised across worker processes but still pipelined
  with GPU compute.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.base import Cache
from repro.cache.page_cache import PageCache
from repro.cluster.server import ServerConfig
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import BatchSampler, RandomSampler, Sampler
from repro.pipeline.base import DataLoader
from repro.prep.pipeline import PrepPipeline
from repro.storage.filestore import FileStore


class PyTorchNativeLoader(DataLoader):
    """The framework-default data loader (Pillow prep + page cache)."""

    name = "pytorch-dl"

    @classmethod
    def build(cls, dataset: SyntheticDataset, server: ServerConfig,
              batch_size: int, num_gpus: Optional[int] = None,
              cores: Optional[float] = None, cache: Optional[Cache] = None,
              seed: int = 0,
              sampler: Optional[Sampler] = None) -> "PyTorchNativeLoader":
        """Construct a loader for one training job on one server.

        Args:
            dataset: Dataset to train on.
            server: Server the job runs on.
            batch_size: Per-iteration (global, per-job) batch size.
            num_gpus: GPUs used by the job (default: all of the server's).
            cores: Physical cores dedicated to this job's prep workers
                (default: the server's fair share for the job's GPUs).
            cache: Shared page cache to use (a fresh one is created when not
                given; HP-search simulations pass the shared instance).
            seed: Sampler seed.
            sampler: Ready-made item-order sampler to reuse (parameter sweeps
                share one memoised sampler across loaders).
        """
        gpus = num_gpus if num_gpus is not None else server.num_gpus
        prep = PrepPipeline.for_task(dataset.spec.task, library="pytorch")
        prep = prep.with_scaled_cost(dataset.spec.prep_cost_scale)
        workers = server.worker_pool(cores=cores, gpu_offload=False)
        page_cache = cache if cache is not None else PageCache(server.cache_bytes)
        if sampler is None:
            sampler = RandomSampler(len(dataset), seed=seed)
        return cls(
            dataset=dataset,
            store=FileStore(dataset, server.storage),
            cache=page_cache,
            batch_sampler=BatchSampler(sampler, batch_size),
            prep=prep,
            workers=workers,
            num_gpus=gpus,
        )
