"""Hyperparameter-search schedulers (the workload generator of Secs. 2 and 5.3).

The paper's HP-search experiments launch several concurrent trials with
different hyperparameters and periodically kill the worst performers at epoch
boundaries (Hyperband / successive halving via Ray Tune, Appendix E.2.3).
CoorDL's coordinated prep is compatible with exactly this pattern because
trials only join or leave at epoch boundaries (Sec. 4.3).

This module provides the scheduling substrate:

* :class:`Trial` — one hyperparameter configuration with a deterministic,
  hyperparameter-dependent accuracy trajectory (a noisy saturating curve, so
  "better" configurations genuinely win);
* :class:`SuccessiveHalvingScheduler` — keeps the best ``1/eta`` of the
  surviving trials at each rung;
* :class:`HyperbandScheduler` — the standard bracket construction over
  successive halving.

The search drivers in :mod:`repro.hpsearch.campaign` combine these schedulers
with the data-pipeline timing from :class:`repro.sim.hp_search.HPSearchScenario`
to estimate end-to-end search times with DALI versus CoorDL (Fig. 23).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class Trial:
    """One hyperparameter configuration being evaluated.

    Attributes:
        trial_id: Dense identifier.
        learning_rate: Learning rate of the trial.
        momentum: Momentum of the trial.
        epochs_trained: Epochs completed so far.
        last_accuracy: Validation accuracy after the last completed epoch.
        alive: Whether the scheduler still runs this trial.
    """

    trial_id: int
    learning_rate: float
    momentum: float
    epochs_trained: int = 0
    last_accuracy: float = 0.0
    alive: bool = True

    def _quality(self) -> float:
        """Intrinsic quality of this configuration in (0, 1).

        Peaks near the conventional (lr=0.1, momentum=0.9) setting and decays
        log-smoothly away from it, so schedulers have a real signal to rank on.
        """
        lr_penalty = abs(math.log10(self.learning_rate) - math.log10(0.1))
        momentum_penalty = abs(self.momentum - 0.9) * 2.0
        return max(0.05, 1.0 - 0.35 * lr_penalty - momentum_penalty * 0.4)

    def train_one_epoch(self, rng: np.random.Generator) -> float:
        """Advance the trial by one epoch and return the new accuracy."""
        if not self.alive:
            raise ConfigurationError(f"trial {self.trial_id} was already stopped")
        self.epochs_trained += 1
        quality = self._quality()
        asymptote = 0.5 + 0.3 * quality
        tau = 6.0 + 6.0 * (1.0 - quality)
        noise = rng.normal(0.0, 0.004)
        self.last_accuracy = max(
            0.0, asymptote * (1.0 - math.exp(-self.epochs_trained / tau)) + noise)
        return self.last_accuracy


def sample_trials(num_trials: int, seed: int = 0) -> List[Trial]:
    """Draw ``num_trials`` (learning-rate, momentum) configurations."""
    if num_trials <= 0:
        raise ConfigurationError("need at least one trial")
    rng = np.random.default_rng(seed)
    trials = []
    for trial_id in range(num_trials):
        trials.append(Trial(
            trial_id=trial_id,
            learning_rate=float(10 ** rng.uniform(-3.0, 0.0)),
            momentum=float(rng.uniform(0.5, 0.99)),
        ))
    return trials


@dataclass
class Rung:
    """One elimination round: every surviving trial trains ``epochs`` epochs."""

    epochs: int
    survivors_before: int
    survivors_after: int


class SuccessiveHalvingScheduler:
    """Successive halving: train, rank, keep the top ``1/eta``; repeat.

    Args:
        eta: Elimination factor (3 is the Hyperband default).
        min_epochs_per_rung: Epochs each surviving trial trains before the
            next elimination (decisions happen at epoch boundaries only,
            which is what coordinated prep requires).
        max_total_epochs_per_trial: Stop once a trial has trained this much.
    """

    def __init__(self, eta: int = 3, min_epochs_per_rung: int = 1,
                 max_total_epochs_per_trial: int = 27) -> None:
        if eta < 2:
            raise ConfigurationError("eta must be at least 2")
        if min_epochs_per_rung <= 0 or max_total_epochs_per_trial <= 0:
            raise ConfigurationError("epoch budgets must be positive")
        self._eta = eta
        self._epochs_per_rung = min_epochs_per_rung
        self._max_epochs = max_total_epochs_per_trial

    @property
    def eta(self) -> int:
        """Elimination factor."""
        return self._eta

    def run(self, trials: Sequence[Trial], seed: int = 0) -> Tuple[Trial, List[Rung]]:
        """Run the search to completion; returns (best trial, rung history)."""
        if not trials:
            raise ConfigurationError("need at least one trial")
        rng = np.random.default_rng(seed)
        alive = list(trials)
        rungs: List[Rung] = []
        while len(alive) > 1 and alive[0].epochs_trained < self._max_epochs:
            epochs_this_rung = min(self._epochs_per_rung,
                                   self._max_epochs - alive[0].epochs_trained)
            for _ in range(epochs_this_rung):
                for trial in alive:
                    trial.train_one_epoch(rng)
            survivors = max(1, len(alive) // self._eta)
            ranked = sorted(alive, key=lambda t: t.last_accuracy, reverse=True)
            for loser in ranked[survivors:]:
                loser.alive = False
            rungs.append(Rung(epochs=epochs_this_rung,
                              survivors_before=len(alive),
                              survivors_after=survivors))
            alive = ranked[:survivors]
        # Train the finalists out to the budget so the winner is well measured.
        while alive and alive[0].epochs_trained < self._max_epochs:
            for trial in alive:
                trial.train_one_epoch(rng)
            rungs.append(Rung(epochs=1, survivors_before=len(alive),
                              survivors_after=len(alive)))
        best = max(alive, key=lambda t: t.last_accuracy)
        return best, rungs

    def total_trial_epochs(self, rungs: Sequence[Rung]) -> int:
        """Sum of (trials x epochs) over the whole search — the work done."""
        return sum(r.epochs * r.survivors_before for r in rungs)


class HyperbandScheduler:
    """Hyperband: several successive-halving brackets with different budgets.

    Args:
        max_epochs_per_trial: R in the Hyperband paper.
        eta: Elimination factor shared by all brackets.
    """

    def __init__(self, max_epochs_per_trial: int = 27, eta: int = 3) -> None:
        if max_epochs_per_trial <= 0:
            raise ConfigurationError("max epochs must be positive")
        self._max_epochs = max_epochs_per_trial
        self._eta = eta
        self._s_max = int(math.floor(math.log(max_epochs_per_trial, eta)))

    @property
    def num_brackets(self) -> int:
        """Number of successive-halving brackets Hyperband will run."""
        return self._s_max + 1

    def bracket_sizes(self) -> List[Tuple[int, int]]:
        """(initial trials, initial epochs-per-rung) for each bracket."""
        sizes = []
        for s in range(self._s_max, -1, -1):
            n = int(math.ceil((self._s_max + 1) * (self._eta ** s) / (s + 1)))
            r = max(1, int(self._max_epochs / (self._eta ** s)))
            sizes.append((n, r))
        return sizes

    def run(self, seed: int = 0) -> Tuple[Trial, int, Dict[int, List[Rung]]]:
        """Run all brackets; returns (best trial, total trial-epochs, rungs)."""
        best: Trial | None = None
        total_epochs = 0
        all_rungs: Dict[int, List[Rung]] = {}
        for bracket, (num_trials, epochs_per_rung) in enumerate(self.bracket_sizes()):
            scheduler = SuccessiveHalvingScheduler(
                eta=self._eta, min_epochs_per_rung=epochs_per_rung,
                max_total_epochs_per_trial=self._max_epochs)
            trials = sample_trials(num_trials, seed=seed + bracket * 1000)
            winner, rungs = scheduler.run(trials, seed=seed + bracket)
            all_rungs[bracket] = rungs
            total_epochs += scheduler.total_trial_epochs(rungs)
            if best is None or winner.last_accuracy > best.last_accuracy:
                best = winner
        assert best is not None
        return best, total_epochs, all_rungs
