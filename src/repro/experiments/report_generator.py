"""Generate EXPERIMENTS.md: paper-vs-measured for every reproduced table/figure.

Usage::

    python -m repro.experiments.report_generator [output_path] [scale]

Runs every registered experiment (at a configurable dataset scale) and writes
a markdown report containing, per experiment: what the paper reports, the
measured table from this reproduction, and any known deviations.  The
committed EXPERIMENTS.md in the repository root was produced by this module.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.base import SWEEP_SCALE
from repro.store import PersistentPool, StoreArg

#: What the paper reports for each experiment, quoted/condensed from the text.
PAPER_EXPECTATIONS: Dict[str, str] = {
    "fig1": "HDD 15 MB/s, SSD 530 MB/s, effective fetch 802 MB/s at a 35% cache, "
            "CPU prep 735 MB/s (1062 MB/s with GPU offload) vs a GPU demand of "
            "2283 MB/s for 8xV100 ResNet18 — the pipeline cannot keep the GPUs busy.",
    "fig2": "With 35% of the dataset cached on Config-SSD-V100, the nine models "
            "spend 10-70% of epoch time blocked on I/O.",
    "fig3": "ResNet18 epoch time splits into compute, the ideal (capacity-miss) "
            "fetch stall, and an extra ~20% of misses caused by page-cache thrashing; "
            "the thrashing share disappears as the cache approaches the dataset size.",
    "fig4": "3-4 prep cores per GPU suffice for ResNet50; ResNet18/AlexNet need "
            "12-24 cores per GPU to mask prep stalls.",
    "fig5": "DALI's GPU-assisted prep eliminates the ResNet18 prep stall on 1080Ti "
            "servers but still leaves ~50% prep stall on V100s (3 cores/GPU).",
    "fig6": "With 8 GPUs and 3 cores/GPU, prep stalls range from ~5% (compute-heavy "
            "models) to ~65% (compute-light models).",
    "tab3": "TensorFlow/TFRecord: 91/94/97% cache misses at 50/35/25% cache for an "
            "8-GPU job, and 6.1-7.3x read amplification (860-1019 GB of disk I/O) "
            "for 8 uncoordinated HP-search jobs.",
    "fig8": "On a 4-item dataset with a 2-item cache, MinIO always takes exactly the "
            "2 capacity misses per epoch; the LRU page cache takes 2-4.",
    "fig9a": "Single-server training: CoorDL (MinIO) is up to 1.8x faster than "
             "DALI-seq and up to ~1.5x faster than DALI-shuffle; gains are larger on "
             "the HDD SKU (2.1x / 1.53x for ResNet50 on OpenImages).",
    "fig9b": "Two-server distributed training: partitioned caching gives up to 15x "
             "on HDD servers (AlexNet/OpenImages) and 1.3-2.9x on SSD servers, by "
             "eliminating storage I/O after the first epoch.",
    "fig9d": "8-job HP search on Config-SSD-V100: ~3x for AlexNet/ShuffleNet, 5.6x "
             "for the M5 audio model, 1.9x for ResNet50.",
    "fig9e": "AlexNet HP search with 8x1 / 4x2 / 2x4 / 1x8 GPU jobs: a single job "
             "benefits from MinIO only; the coordinated-prep benefit grows with the "
             "number of concurrent jobs.",
    "fig10": "ResNet50/ImageNet-1K to 75.9% top-1 on 16x1080Ti across 2 HDD servers: "
             "~2 days with DALI vs ~12 hours with CoorDL (4x); the accuracy-vs-epoch "
             "curve is unchanged.",
    "fig11": "DALI sees cache hits early in each epoch then becomes disk-bound; "
             "CoorDL's disk I/O is uniform across the epoch, totals less, and the "
             "epoch finishes earlier.",
    "tab5": "DS-Analyzer's predicted training speed for 25/35/50% caches is within "
            "4% of the measured values (AlexNet, Config-SSD-V100).",
    "fig16": "Predicted and empirical speed agree that ~55% of ImageNet-1K cached is "
             "enough for AlexNet; beyond that the job is CPU-bound and more DRAM "
             "does not help.",
    "tab6": "ShuffleNetV2/OpenImages at a 65% cache: 66% misses & 422 GB disk I/O "
            "(DALI-seq), 53% & 340 GB (DALI-shuffle), 35% & 225 GB (CoorDL = the "
            "capacity minimum).",
    "tab7": "HP search with the dataset fully cached: CoorDL speeds per-job training "
            "by 1.21-1.87x purely by removing redundant pre-processing.",
    "fig12": "On a 64-vCPU server, ResNet18 still shows ~37% prep stall at 8 vCPUs "
             "per GPU; hyper-threads add only ~30% prep throughput.",
    "fig13": "DALI beats the Pillow-based PyTorch DataLoader even with CPU-only "
             "prep; GPU-based prep helps light models but hurts ResNet50/VGG11.",
    "fig14": "Larger MobileNetV2 batches reduce GPU compute time per epoch but the "
             "epoch time stays flat because prep is the bottleneck.",
    "fig17": "HP search on ImageNet-22K: up to 2.5x speedup; fetch stalls are lower "
             "than OpenImages because items are smaller.",
    "fig18": "ResNet50/OpenImages across 2-4 HDD servers: DALI remains IO-bound "
             "(disk I/O per server shrinks but GPUs grow proportionally); CoorDL "
             "does no disk I/O beyond the first epoch and keeps scaling.",
    "fig19_20": "CoorDL turns CPU time wasted waiting on I/O into useful prep, and "
                "the cross-job staging area costs only ~5 GB of memory.",
    "fig21": "MinIO inside the native PyTorch DataLoader (Py-CoorDL) gives 2.1-3.3x "
             "on HDD; on SSD gains are marginal because Pillow prep is the bottleneck.",
    "fig22": "Py-CoorDL's coordinated prep cuts training time ~1.8x for 8 concurrent "
             "PyTorch-DL jobs on a cached dataset.",
    "fig23": "End-to-end Ray-Tune-style HP search: coordinated prep alone gives "
             "~2.5x on HDD (less on SSD); adding MinIO brings the total to ~5.5x on "
             "HDD.",
    "fig_crash": "(beyond paper) Sec. 4.4 describes the failure protocol — timeout "
                 "= 10x iteration time, pending minibatch reassigned — but never "
                 "quantifies a crash; this what-if measures the detection stall "
                 "plus the cache re-warm I/O per crash schedule.",
    "fig_elastic": "(beyond paper) CoorDL's partitioned cache assumes static "
                   "membership; this what-if lets servers join (cold, warming via "
                   "the miss path) and leave (cached bytes lost, survivors "
                   "re-fetch) mid-training.",
    "fig_straggler": "(beyond paper) the epoch of a data-parallel job is bound by "
                     "its slowest rank; this what-if degrades individual servers' "
                     "network/disk rates and measures the drag.",
    "fig_multitenant": "(beyond paper) Tab. 3 shows uncoordinated HP jobs thrash "
                       "the page cache; this what-if scales the number of "
                       "concurrent campaigns sharing one cache and core budget.",
}

#: Known, intentional deviations of this reproduction from the paper's numbers.
KNOWN_DEVIATIONS: Dict[str, str] = {
    "fig2": "VGG11/ResNet50 on the SSD SKU show smaller fetch stalls than the paper "
            "because the calibrated page-cache model is slightly more favourable to "
            "them at a 35% cache.",
    "fig9b": "Speedups on the HDD SKU come out larger than the paper's 15x because "
             "the simulated page cache keeps a somewhat lower hit rate and the HDD "
             "model uses the conservative 15 MB/s random-read figure.",
    "fig10": "The measured speedup (~9x) exceeds the paper's 4x for the same reason "
             "as Fig. 9(b): the DALI baseline's effective HDD throughput is "
             "conservative.  CoorDL's absolute time-to-accuracy (~12 h) matches.",
    "tab5": "Prediction error is a few percent larger than the paper's 4% bound "
            "because the 'empirical' side here is the discrete pipelined simulation.",
    "tab6": "Miss rates for the DALI baselines are a few points higher than the "
            "paper's (the segmented-LRU page-cache model is an approximation of "
            "Linux's); CoorDL hits the 35% capacity minimum exactly as in the paper.",
}


def generate(output_path: str = "EXPERIMENTS.md", scale: float = SWEEP_SCALE,
             workers: "int | None" = None, store: StoreArg = None,
             pool: "PersistentPool | None" = None,
             only: "Sequence[str] | None" = None) -> str:
    """Run every experiment and write the markdown report; returns the text.

    ``workers`` fans each sweep-backed experiment's grid out over that many
    processes (byte-identical results; experiments without a sweep grid
    ignore it).  ``store`` memoises every sweep point in a content-addressed
    result store (a :class:`repro.store.SweepStore` or directory path;
    ``None`` reads ``REPRO_SWEEP_STORE``, ``False`` disables): a warm
    second ``generate`` reduces to near-pure store reads.  ``pool`` hands
    the sweep-backed experiments an already-spawned
    :class:`~repro.store.PersistentPool` (the serve daemon shares its pool
    this way).  ``only`` restricts the report to the named experiment ids,
    in registry order.
    """
    if only is not None:
        known = set(registry.experiment_ids())
        unknown = sorted(set(only) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown experiment ids in only=: {unknown}")
        wanted = [eid for eid in registry.experiment_ids() if eid in set(only)]
    else:
        wanted = registry.experiment_ids()
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every table and figure of the paper's analysis, evaluation and appendix, "
        "regenerated by this library's benchmark harness "
        "(`pytest benchmarks/ --benchmark-only`).",
        "",
        f"Datasets are simulated at 1/{round(1 / scale)} of their real size "
        "(cache fractions, stall fractions and speedups are scale-free; absolute "
        "epoch times scale linearly).  Disk-I/O columns are scaled back to full "
        "dataset size where the column name says so.",
        "",
    ]
    for experiment_id in wanted:
        start = time.time()
        kwargs = {} if experiment_id == "fig8" else {"scale": scale}
        if workers is not None and registry.accepts_kwarg(experiment_id, "workers"):
            kwargs["workers"] = workers
        if store is not None and registry.accepts_kwarg(experiment_id, "store"):
            kwargs["store"] = store
        if pool is not None and registry.accepts_kwarg(experiment_id, "pool"):
            kwargs["pool"] = pool
        result = registry.run_experiment(experiment_id, **kwargs)
        elapsed = time.time() - start
        lines.append(f"## {result.title}")
        lines.append("")
        lines.append(f"**Paper:** {PAPER_EXPECTATIONS.get(experiment_id, '(n/a)')}")
        lines.append("")
        lines.append("**Measured:**")
        lines.append("")
        lines.append("```")
        lines.append(result.format_table())
        lines.append("```")
        lines.append("")
        if experiment_id in KNOWN_DEVIATIONS:
            lines.append(f"**Deviation:** {KNOWN_DEVIATIONS[experiment_id]}")
            lines.append("")
        lines.append(f"*(regenerated in {elapsed:.1f} s; bench target: see DESIGN.md "
                     f"experiment index, id `{experiment_id}`)*")
        lines.append("")
    text = "\n".join(lines)
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def main() -> None:
    """CLI entry point."""
    output = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else SWEEP_SCALE
    generate(output, scale)
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
