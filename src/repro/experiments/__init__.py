"""Experiments: one module per paper figure/table, plus the registry."""

from repro.experiments.base import (
    DEFAULT_SCALE,
    SWEEP_SCALE,
    ExperimentResult,
    scaled_cache_bytes,
    scaled_dataset,
)

__all__ = [
    "ExperimentResult",
    "scaled_dataset",
    "scaled_cache_bytes",
    "DEFAULT_SCALE",
    "SWEEP_SCALE",
]
