"""Multi-server distributed training scenario (Sec. 5.2, Figs. 9b/c, 10, 18).

In synchronous data-parallel training across servers, every epoch each server
processes a random disjoint shard of the dataset and all servers proceed in
lockstep (gradient synchronisation at every iteration).  The epoch time of
the job is therefore the *slowest* server's epoch time.

Two data-pipeline configurations are compared:

* **baseline (DALI-shuffle)** — each server relies on its local OS page cache;
  because the shard changes every epoch, local misses go to local storage.
* **CoorDL** — per-server MinIO caches coordinated into a partitioned cache;
  local misses are served from the remote server's DRAM over TCP and only
  fall back to storage when no server caches the item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.page_cache import PageCache
from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.coordl.partitioned_loader import PartitionedCoorDLLoader
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import BatchSampler, DistributedSampler
from repro.exceptions import ConfigurationError
from repro.pipeline.base import DataLoader
from repro.pipeline.dali import DALILoader
from repro.pipeline.stats import EpochStats
from repro.prep.pipeline import PrepPipeline
from repro.sim.engine import PipelineSimulator
from repro.sim.single_server import effective_batch_size
from repro.storage.filestore import FileStore


@dataclass
class DistributedEpoch:
    """One epoch of a distributed job: per-server stats plus the job view."""

    per_server: List[EpochStats]

    @property
    def epoch_time_s(self) -> float:
        """Job epoch time (slowest server)."""
        return max(s.epoch_time_s for s in self.per_server)

    @property
    def total_disk_bytes(self) -> float:
        """Disk bytes summed over all servers."""
        return sum(s.io.disk_bytes for s in self.per_server)

    @property
    def total_remote_bytes(self) -> float:
        """Bytes fetched from remote caches, summed over servers."""
        return sum(s.io.remote_bytes for s in self.per_server)

    @property
    def samples(self) -> int:
        """Samples processed across all servers (one dataset pass)."""
        return sum(s.samples for s in self.per_server)

    @property
    def throughput(self) -> float:
        """Aggregate samples/second of the distributed job."""
        return self.samples / self.epoch_time_s if self.epoch_time_s else 0.0


@dataclass
class DistributedResult:
    """Multi-epoch outcome of one distributed training configuration."""

    loader_name: str
    epochs: List[DistributedEpoch]

    def steady_epochs(self, skip_first: int = 1) -> List[DistributedEpoch]:
        """Epochs after the cold-cache warm-up."""
        return self.epochs[skip_first:] if len(self.epochs) > skip_first else self.epochs

    @property
    def steady_epoch_time_s(self) -> float:
        """Mean steady-state epoch time of the job."""
        steady = self.steady_epochs()
        return sum(e.epoch_time_s for e in steady) / len(steady)

    @property
    def steady_throughput(self) -> float:
        """Mean steady-state aggregate throughput."""
        steady = self.steady_epochs()
        return sum(e.throughput for e in steady) / len(steady)

    @property
    def steady_disk_bytes_per_server(self) -> float:
        """Mean per-server disk bytes per steady-state epoch."""
        steady = self.steady_epochs()
        servers = len(steady[0].per_server)
        return sum(e.total_disk_bytes for e in steady) / (len(steady) * servers)


def _build_baseline_loaders(dataset: SyntheticDataset, servers: List[ServerConfig],
                            model: ModelSpec, gpu_prep: bool,
                            seed: int) -> List[DataLoader]:
    """Per-server DALI-shuffle loaders with local page caches and shard sampling."""
    loaders: List[DataLoader] = []
    for rank, server in enumerate(servers):
        batch_size = effective_batch_size(
            dataset, model.batch_size_for(server.gpu) * server.num_gpus)
        prep = PrepPipeline.for_task(dataset.spec.task, library="dali")
        prep = prep.with_scaled_cost(dataset.spec.prep_cost_scale)
        workers = server.worker_pool(gpu_offload=gpu_prep)
        sampler = DistributedSampler(len(dataset), num_replicas=len(servers),
                                     rank=rank, seed=seed)
        loaders.append(DALILoader(
            dataset=dataset,
            store=FileStore(dataset, server.storage),
            cache=PageCache(server.cache_bytes),
            batch_sampler=BatchSampler(sampler, batch_size),
            prep=prep,
            workers=workers,
            num_gpus=server.num_gpus,
            mode="shuffle",
        ))
    return loaders


def _build_coordl_loaders(dataset: SyntheticDataset, servers: List[ServerConfig],
                          model: ModelSpec, gpu_prep: bool,
                          seed: int) -> List[PartitionedCoorDLLoader]:
    batch_size = effective_batch_size(
        dataset, model.batch_size_for(servers[0].gpu) * servers[0].num_gpus)
    return PartitionedCoorDLLoader.build_group(dataset, servers, batch_size,
                                               gpu_prep=gpu_prep, seed=seed)


class DistributedTraining:
    """Simulate a data-parallel job across several servers.

    Args:
        model: DNN being trained.
        dataset: Dataset of the job.
        servers: Participating servers (assumed homogeneous, as in the paper).
        num_epochs: Epochs to simulate (first is warm-up).
        queue_depth: Prefetch queue depth.
        fast_path: Allow the per-server vectorised epoch collection (exact;
            disable to force the per-item reference path, e.g. in
            equivalence tests and benchmarks).
    """

    def __init__(self, model: ModelSpec, dataset: SyntheticDataset,
                 servers: List[ServerConfig], num_epochs: int = 3,
                 queue_depth: int = 4, fast_path: bool = True) -> None:
        if len(servers) < 2:
            raise ConfigurationError("distributed training needs at least two servers")
        if num_epochs < 2:
            raise ConfigurationError("need warm-up plus at least one measured epoch")
        self._model = model
        self._dataset = dataset
        self._servers = servers
        self._num_epochs = num_epochs
        self._queue_depth = queue_depth
        self._fast_path = fast_path

    def _run(self, loaders: List[DataLoader], name: str,
             gpu_prep: bool) -> DistributedResult:
        simulators = [
            PipelineSimulator(self._model, server.gpu, queue_depth=self._queue_depth,
                              fast_path=self._fast_path)
            for server in self._servers
        ]
        epochs: List[DistributedEpoch] = []
        for epoch_index in range(self._num_epochs):
            per_server = [
                simulators[rank].run_epoch(loaders[rank], epoch_index)
                for rank in range(len(self._servers))
            ]
            epochs.append(DistributedEpoch(per_server=per_server))
        return DistributedResult(loader_name=name, epochs=epochs)

    def run_baseline(self, gpu_prep: bool = False, seed: int = 0) -> DistributedResult:
        """Simulate the job with per-server DALI-shuffle + local page caches."""
        loaders = _build_baseline_loaders(self._dataset, self._servers, self._model,
                                          gpu_prep, seed)
        return self._run(loaders, "dali-shuffle", gpu_prep)

    def run_coordl(self, gpu_prep: bool = False, seed: int = 0) -> DistributedResult:
        """Simulate the job with CoorDL's partitioned caching."""
        loaders = _build_coordl_loaders(self._dataset, self._servers, self._model,
                                        gpu_prep, seed)
        return self._run(list(loaders), "coordl-partitioned", gpu_prep)
