"""Server model: GPUs + CPU cores + DRAM + storage + NIC.

A :class:`ServerConfig` is the unit at which the paper's experiments are run:
single-server multi-GPU training, several concurrent HP-search jobs on one
server, or several servers in a distributed job.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units
from repro.cluster.network import NetworkLink, forty_gbps_ethernet
from repro.compute.gpu import GPUSpec
from repro.exceptions import ConfigurationError
from repro.prep.workers import WorkerPool
from repro.storage.device import StorageDevice


@dataclass(frozen=True)
class ServerConfig:
    """Hardware configuration of one training server.

    Attributes:
        name: SKU name used in reports ("Config-SSD-V100", ...).
        gpu: GPU model installed.
        num_gpus: GPUs per server (8 in both paper SKUs).
        physical_cores: Physical CPU cores (24 in both paper SKUs).
        vcpus: Hardware threads (hyper-threading doubles the core count on
            the AWS-style SKUs of Appendix B.1).
        dram_bytes: Total DRAM.
        cache_bytes: DRAM that may be used for caching training data (the
            paper's example reserves ~400 of 500 GiB for the dataset cache).
        storage: Storage device holding the dataset.
        network: NIC / fabric used for partitioned caching.
    """

    name: str
    gpu: GPUSpec
    num_gpus: int
    physical_cores: int
    vcpus: int
    dram_bytes: float
    cache_bytes: float
    storage: StorageDevice
    network: NetworkLink

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ConfigurationError("a server needs at least one GPU")
        if self.physical_cores <= 0:
            raise ConfigurationError("a server needs at least one CPU core")
        if self.vcpus < self.physical_cores:
            raise ConfigurationError("vCPUs cannot be fewer than physical cores")
        if self.cache_bytes > self.dram_bytes:
            raise ConfigurationError("cache budget exceeds DRAM")

    @property
    def cores_per_gpu(self) -> float:
        """Physical cores available per GPU (3 on both paper SKUs)."""
        return self.physical_cores / self.num_gpus

    def worker_pool(self, cores: float | None = None, gpu_offload: bool = False,
                    use_hyperthreads: bool = False) -> WorkerPool:
        """Build a prep worker pool drawing on this server's CPUs.

        Args:
            cores: Physical cores to dedicate (defaults to all of them).
            gpu_offload: Enable DALI-style GPU prep on this server's GPUs.
            use_hyperthreads: Also use the hyper-threads beyond the physical
                cores (Appendix B.1 experiments).
        """
        physical = self.physical_cores if cores is None else cores
        if physical > self.physical_cores:
            raise ConfigurationError(
                f"requested {physical} cores but server has {self.physical_cores}")
        hyper = 0.0
        if use_hyperthreads and cores is None:
            hyper = float(self.vcpus - self.physical_cores)
        return WorkerPool(
            physical_cores=float(physical),
            hyperthreads=hyper,
            gpu_offload=gpu_offload,
            gpu_decode_rate_scale=self.gpu.gpu_prep_scale,
        )

    def with_cache_bytes(self, cache_bytes: float) -> "ServerConfig":
        """Copy of this server with a different cache budget.

        Experiments sweep "x % of the dataset cached" by shrinking the cache
        budget rather than growing the dataset.
        """
        return replace(self, cache_bytes=cache_bytes)

    def with_storage(self, storage: StorageDevice) -> "ServerConfig":
        """Copy of this server with a different storage device."""
        return replace(self, storage=storage)

    def with_gpus(self, num_gpus: int) -> "ServerConfig":
        """Copy of this server with a different GPU count."""
        return replace(self, num_gpus=num_gpus)

    def with_cores(self, physical_cores: int, vcpus: int | None = None) -> "ServerConfig":
        """Copy of this server with a different CPU core count."""
        return replace(self, physical_cores=physical_cores,
                       vcpus=vcpus if vcpus is not None else physical_cores * 2)
