"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class CacheError(ReproError):
    """Base class for cache-related failures."""


class CacheCapacityError(CacheError):
    """An item larger than the total cache capacity was offered to the cache."""


class UnknownItemError(ReproError):
    """A dataset item id was requested that does not exist in the dataset."""


class StagingTimeoutError(ReproError):
    """A job timed out waiting for a minibatch in the cross-job staging area."""


class JobFailedError(ReproError):
    """A coordinated-prep job died and could not be recovered."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SweepPointError(ReproError):
    """One point of a parameter sweep failed to simulate.

    Raised by :meth:`repro.sim.sweep.SweepRunner.run` with the failing
    point's label (or a synthesised description) in the message and the
    original exception chained as ``__cause__`` — including when the point
    ran in a worker process, where a bare ``multiprocessing`` traceback
    would otherwise lose both.

    Attributes:
        point_label: Label/description of the failing sweep point.
        child_traceback: Formatted traceback from the worker process, when
            the point failed in one (``None`` for in-process failures, whose
            traceback is the chained exception's own).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.point_label: str = ""
        self.child_traceback: str | None = None


class ProfilingError(ReproError):
    """DS-Analyzer could not complete a measurement phase."""


class ResilienceError(ReproError):
    """Base class for runtime-resilience failures (fault injection/recovery)."""


class WorkerLostError(ResilienceError):
    """A pool worker died and the respawn budget could not recover the run.

    Raised by :class:`repro.resilience.SupervisedExecutor` once a single
    ``run_chunks`` call has rebuilt the worker pool ``max_respawns`` times
    and chunks are still being lost.  :class:`repro.store.PersistentPool`
    converts it into a labelled
    :class:`~repro.exceptions.SweepPointError` naming the lowest lost
    point, so sweep callers see the same failure protocol whether a point
    raised or its worker was killed.

    Attributes:
        pending_chunks: The task chunks that were still unfinished when the
            budget ran out (opaque to the executor; the pool reads the task
            indices back out of them).
        respawns: How many pool rebuilds this run burned before giving up.
    """

    def __init__(self, message: str, pending_chunks: list | None = None,
                 respawns: int = 0) -> None:
        super().__init__(message)
        self.pending_chunks: list = pending_chunks or []
        self.respawns = respawns


class HostLostError(ResilienceError):
    """No worker host of a distributed sweep fabric could be reached.

    Raised by :meth:`repro.dist.DistExecutor.run_points` when every
    configured agent endpoint refuses the connection (or fails the
    protocol handshake) at dispatch time.  Hosts that die *mid-run* do
    not raise this: their chunks are reassigned under the executor's
    budget, and exhausting that budget raises the shared sweep failure,
    a labelled :class:`~repro.exceptions.SweepPointError`.
    """


class TransientFaultError(ResilienceError):
    """An injected fault that a retry policy is expected to absorb."""


class PermanentFaultError(ResilienceError):
    """An injected fault that no retry will fix (models ENOSPC and friends)."""
