"""GPU device models.

Only two properties of a GPU matter for data-stall analysis: how fast it can
consume pre-processed minibatches for a given model (captured per-model in the
model zoo as a V100-relative rate), and how much memory it has (which bounds
batch size and whether DALI's GPU-prep mode fits).  The paper's two server
SKUs use V100 (32 GB, tensor cores, mixed precision) and GTX 1080Ti (11 GB,
full precision) parts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class GPUSpec:
    """One GPU model.

    Attributes:
        name: Marketing name.
        memory_bytes: Device memory.
        compute_scale: Training throughput relative to a V100 running the
            same model (V100 = 1.0).  The 1080Ti value reflects the paper's
            full-precision configuration on that SKU.
        gpu_prep_scale: Relative speed at DALI's offloaded prep kernels
            (nvJPEG decode + CUDA augmentations).
        supports_mixed_precision: Whether tensor-core mixed precision is used
            (V100 with Apex/LARC in the paper).
    """

    name: str
    memory_bytes: float
    compute_scale: float
    gpu_prep_scale: float
    supports_mixed_precision: bool

    def __post_init__(self) -> None:
        if self.compute_scale <= 0 or self.gpu_prep_scale <= 0:
            raise ConfigurationError("GPU scales must be positive")
        if self.memory_bytes <= 0:
            raise ConfigurationError("GPU memory must be positive")

    def scaled(self, factor: float, name: str | None = None) -> "GPUSpec":
        """A hypothetical GPU ``factor``x faster at compute.

        DS-Analyzer's what-if analysis ("what if GPUs get 2x faster?") uses
        this to construct future hardware points.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return GPUSpec(
            name=name or f"{self.name}-x{factor:g}",
            memory_bytes=self.memory_bytes,
            compute_scale=self.compute_scale * factor,
            gpu_prep_scale=self.gpu_prep_scale * factor,
            supports_mixed_precision=self.supports_mixed_precision,
        )


V100 = GPUSpec(
    name="V100",
    memory_bytes=units.GiB(32),
    compute_scale=1.0,
    gpu_prep_scale=1.0,
    supports_mixed_precision=True,
)

GTX_1080TI = GPUSpec(
    name="1080Ti",
    memory_bytes=units.GiB(11),
    compute_scale=0.25,
    gpu_prep_scale=0.55,
    supports_mixed_precision=False,
)

_GPUS = {g.name.lower(): g for g in (V100, GTX_1080TI)}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by name ("V100", "1080Ti"), case-insensitively."""
    try:
        return _GPUS[name.lower()]
    except KeyError:
        raise ConfigurationError(f"unknown GPU {name!r}") from None
