"""Table 6 — cache misses and disk I/O: DALI-seq vs DALI-shuffle vs CoorDL.

Training ShuffleNetV2 on OpenImages on Config-SSD-V100 (65 % of the dataset
fits in the cache), the paper measures 66 % misses / 422 GB of disk reads for
DALI-seq, 53 % / 340 GB for DALI-shuffle, and the capacity minimum of 35 % /
225 GB for CoorDL.  The three loaders run as one
:class:`~repro.sim.sweep.SweepRunner` grid (disk I/O is reported scaled back
to the full dataset size).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import SHUFFLENET_V2, ModelSpec
from repro.experiments.base import DEFAULT_SCALE, ExperimentResult
from repro.sim.sweep import SweepRunner
from repro.store import PersistentPool, StoreArg


def run(scale: float = DEFAULT_SCALE, model: ModelSpec = SHUFFLENET_V2,
        dataset_name: str = "openimages", cache_fraction: float = 0.65,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the miss-rate / disk-I/O comparison of Table 6."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=[model], loaders=["dali-seq", "dali-shuffle", "coordl"],
        cache_fractions=[cache_fraction], dataset=dataset_name),
        workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="tab6",
        title=f"Table 6 — cache miss %% and disk I/O ({model.name}/{dataset_name}, "
              f"{cache_fraction:.0%} cache)",
        columns=["loader", "cache_miss_pct", "disk_io_gb", "epoch_time_s"],
        notes=["paper: 66% / 53% / 35% misses and 422 / 340 / 225 GB for "
               "DALI-seq / DALI-shuffle / CoorDL",
               f"minimum possible miss rate is {100 * (1 - cache_fraction):.0f}%",
               "disk I/O reported at full-dataset scale"],
    )
    for kind, label in (("dali-seq", "DALI-seq"), ("dali-shuffle", "DALI-shuffle"),
                        ("coordl", "CoorDL")):
        epoch = sweep.one(loader=kind).steady
        result.add_row(
            loader=label,
            cache_miss_pct=100.0 * epoch.cache_miss_ratio,
            disk_io_gb=epoch.io.disk_bytes / scale / 1e9,
            epoch_time_s=epoch.epoch_time_s,
        )
    return result
