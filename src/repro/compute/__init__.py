"""Compute substrate: GPU specs and the calibrated model zoo."""

from repro.compute.gpu import GTX_1080TI, V100, GPUSpec, get_gpu
from repro.compute.model_zoo import (
    ALEXNET,
    ALL_STALL_MODELS,
    AUDIO_M5,
    BERT_LARGE,
    GNMT,
    IMAGE_MODELS,
    MOBILENET_V2,
    RESNET18,
    RESNET50,
    SHUFFLENET_V2,
    SQUEEZENET,
    SSD_RES18,
    VGG11,
    ModelSpec,
    get_model,
    model_names,
)

__all__ = [
    "GPUSpec",
    "V100",
    "GTX_1080TI",
    "get_gpu",
    "ModelSpec",
    "get_model",
    "model_names",
    "IMAGE_MODELS",
    "ALL_STALL_MODELS",
    "SHUFFLENET_V2",
    "ALEXNET",
    "RESNET18",
    "SQUEEZENET",
    "MOBILENET_V2",
    "RESNET50",
    "VGG11",
    "SSD_RES18",
    "AUDIO_M5",
    "BERT_LARGE",
    "GNMT",
]
