#!/usr/bin/env python3
"""Hyperparameter-search campaign: eight concurrent jobs on one server.

Reproduces the scenario the paper's introduction motivates: eight HP-search
jobs (one per GPU) training ResNet18 on OpenImages on a Config-SSD-V100
server with a partial cache.  Shows:

* the read amplification and prep redundancy of uncoordinated loaders,
* the coordinated-prep + MinIO numbers (one fetch/prep sweep per epoch),
* the cross-job staging machinery in action, including recovery when the HP
  scheduler kills a job mid-epoch.

Run with ``python examples/hp_search_campaign.py``.
"""

from __future__ import annotations

from repro.cluster import config_ssd_v100
from repro.compute import RESNET18
from repro.coordl import CoorDL
from repro.datasets import SyntheticDataset, get_dataset_spec
from repro.sim import HPSearchScenario
from repro.units import speedup

SCALE = 1.0 / 100.0
NUM_JOBS = 8
CACHE_FRACTION = 0.65


def main() -> None:
    dataset = SyntheticDataset(get_dataset_spec("openimages"), scale=SCALE)
    server = config_ssd_v100(cache_bytes=dataset.total_bytes * CACHE_FRACTION)
    model = RESNET18

    # --- 1. Throughput and I/O comparison ----------------------------------
    scenario = HPSearchScenario(model, dataset, server, num_jobs=NUM_JOBS,
                                gpus_per_job=1)
    baseline = scenario.run_baseline()
    coordl = scenario.run_coordl()

    print(f"{NUM_JOBS} concurrent {model.name} jobs on {server.name} "
          f"({CACHE_FRACTION:.0%} cache):\n")
    print(f"{'':<22}{'DALI (per job)':>16}{'CoorDL (per job)':>18}")
    print(f"{'throughput (samples/s)':<22}{baseline.per_job_throughput:>16,.0f}"
          f"{coordl.per_job_throughput:>18,.0f}")
    print(f"{'disk I/O per epoch (GB)':<22}{baseline.disk_bytes_per_epoch / 1e9:>16.2f}"
          f"{coordl.disk_bytes_per_epoch / 1e9:>18.2f}")
    print(f"{'cache miss ratio':<22}{baseline.cache_miss_ratio:>16.0%}"
          f"{coordl.cache_miss_ratio:>18.0%}")
    print(f"{'staging memory (GB)':<22}{0.0:>16.2f}"
          f"{coordl.staging_peak_bytes / 1e9:>18.2f}")
    amp = baseline.disk_bytes_per_epoch / dataset.total_bytes
    print(f"\nread amplification of the uncoordinated baseline: {amp:.1f}x the dataset")
    print(f"CoorDL speedup: {speedup(baseline.epoch_time_s, coordl.epoch_time_s):.2f}x\n")

    # --- 2. Coordination machinery, including a job failure ----------------
    session = CoorDL.for_hp_search(dataset, server, num_jobs=NUM_JOBS, batch_size=256)
    plan = session.plan
    print(f"coordinated epoch plan: {plan.total_batches()} minibatches, "
          f"{plan.unique_item_fetches():,} unique item fetches "
          f"(vs {NUM_JOBS * len(dataset):,} uncoordinated)")

    # Walk a few batches, then pretend the HP scheduler killed job 3 and the
    # remaining jobs hit a batch it owed.
    runner = session.runner
    for assignment in plan.assignments[:4]:
        runner.produce_batch(assignment)
        for job in range(NUM_JOBS):
            runner.consume_batch(job, assignment.batch_id)
    session.detector.mark_dead(3)
    victim = plan.batches_for_producer(3)[1]
    recovered = runner.consume_batch(0, victim.batch_id,
                                     waited_s=session.detector.timeout_s + 1.0)
    event = session.detector.events[-1]
    print(f"job 3 killed mid-epoch -> detected at batch {event.missing_batch_id}, "
          f"its shard reassigned to job {event.reassigned_to} "
          f"(consumer retries: {'pending' if not recovered else 'done'})")
    print(f"staging area currently holds {session.staging.staged_batches} batches, "
          f"peak {session.staging.peak_bytes / 1e9:.2f} GB")


if __name__ == "__main__":
    main()
