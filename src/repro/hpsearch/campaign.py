"""End-to-end HP-search campaigns: scheduler x data pipeline (Fig. 23 setting).

Appendix E.2.3 measures the wall-clock time of a Ray-Tune/Hyperband search
over 16 (learning-rate, momentum) samples on one 8-GPU server, with the
PyTorch DataLoader versus Py-CoorDL.  The search time is the number of
per-trial epochs the scheduler demands multiplied by the per-epoch time the
data pipeline can deliver when the GPUs are packed with concurrent trials.

:class:`SearchCampaign` composes a scheduler from
:mod:`repro.hpsearch.scheduler` with the per-epoch costs measured by
:class:`repro.sim.hp_search.HPSearchScenario` to produce those wall-clock
estimates for an arbitrary model/dataset/server/loader combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.datasets.dataset import SyntheticDataset
from repro.exceptions import ConfigurationError
from repro.hpsearch.scheduler import Rung, SuccessiveHalvingScheduler, Trial, sample_trials
from repro.sim.hp_search import HPSearchScenario
from repro.units import safe_div


@dataclass
class CampaignResult:
    """Outcome of one HP-search campaign under one data-loading configuration."""

    loader_name: str
    best_trial: Trial
    total_trial_epochs: int
    wall_clock_s: float
    rungs: List[Rung]

    @property
    def best_accuracy(self) -> float:
        """Validation accuracy of the winning configuration."""
        return self.best_trial.last_accuracy


class SearchCampaign:
    """Hyperband-style search on one server, timed under DALI or CoorDL.

    Args:
        model: Model every trial trains.
        dataset: Shared dataset.
        server: Server the trials run on.
        num_trials: Hyperparameter samples drawn (16 in the paper's Fig. 23).
        concurrent_jobs: Trials running at once (one per GPU by default).
        eta: Successive-halving elimination factor.
        epochs_per_rung: Epochs between elimination decisions.
        max_epochs_per_trial: Per-trial epoch budget.
        seed: Seed for sampling and the accuracy trajectories.
    """

    def __init__(self, model: ModelSpec, dataset: SyntheticDataset,
                 server: ServerConfig, num_trials: int = 16,
                 concurrent_jobs: int | None = None, eta: int = 2,
                 epochs_per_rung: int = 1, max_epochs_per_trial: int = 8,
                 seed: int = 0) -> None:
        if num_trials <= 0:
            raise ConfigurationError("need at least one trial")
        self._model = model
        self._dataset = dataset
        self._server = server
        self._num_trials = num_trials
        self._concurrent = concurrent_jobs or server.num_gpus
        self._eta = eta
        self._epochs_per_rung = epochs_per_rung
        self._max_epochs = max_epochs_per_trial
        self._seed = seed

    def _per_trial_epoch_time(self, loader: str) -> float:
        """Epoch time of one trial when the server is packed with trials."""
        scenario = HPSearchScenario(self._model, self._dataset, self._server,
                                    num_jobs=self._concurrent, gpus_per_job=1,
                                    seed=self._seed)
        if loader == "coordl":
            return scenario.run_coordl().epoch_time_s
        if loader == "dali":
            return scenario.run_baseline(library="dali").epoch_time_s
        if loader == "pytorch":
            return scenario.run_baseline(library="pytorch").epoch_time_s
        raise ConfigurationError(f"unknown loader {loader!r}")

    def run(self, loader: str) -> CampaignResult:
        """Run the scheduler and convert its demand into wall-clock time.

        Trials run ``concurrent_jobs`` at a time; each wave of concurrently
        training trials costs one per-trial epoch time per epoch, so the
        wall-clock time is ``ceil(trials_in_rung / concurrent) x epochs x
        epoch_time`` summed over rungs.
        """
        scheduler = SuccessiveHalvingScheduler(
            eta=self._eta, min_epochs_per_rung=self._epochs_per_rung,
            max_total_epochs_per_trial=self._max_epochs)
        trials = sample_trials(self._num_trials, seed=self._seed)
        best, rungs = scheduler.run(trials, seed=self._seed)
        epoch_time = self._per_trial_epoch_time(loader)
        wall_clock = 0.0
        for rung in rungs:
            waves = -(-rung.survivors_before // self._concurrent)  # ceil division
            wall_clock += waves * rung.epochs * epoch_time
        return CampaignResult(
            loader_name=loader,
            best_trial=best,
            total_trial_epochs=scheduler.total_trial_epochs(rungs),
            wall_clock_s=wall_clock,
            rungs=rungs,
        )

    def speedup(self, baseline_loader: str = "dali") -> float:
        """Wall-clock speedup of CoorDL over a baseline loader for this search."""
        baseline = self.run(baseline_loader)
        coordl = self.run("coordl")
        return safe_div(baseline.wall_clock_s, coordl.wall_clock_s)
