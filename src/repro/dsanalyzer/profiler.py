"""DS-Analyzer's differential profiler (Sec. 3.2, Appendix C.1).

Placing timers around the data path of a real training script misattributes
time because fetch/prep run in concurrent workers and a stall in one
data-parallel rank shows up as compute time in the others.  DS-Analyzer
instead measures in three phases:

1. **Ingestion rate (G)** — run with synthetic data pre-populated at the GPU:
   no fetch, no prep.
2. **Prep rate (P)** — run with the (subset of the) dataset fully cached in
   DRAM and GPU compute disabled, using every core: isolates prep.
3. **Fetch rates (C, S)** — measure the DRAM copy bandwidth (microbenchmark)
   and the storage device's random-read throughput with a cold cache, prep
   and compute disabled.

The profiler here runs those same phases against the simulated substrate,
yielding a :class:`PipelineProfile` in samples/second that the predictor
(:mod:`repro.dsanalyzer.predictor`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.datasets.dataset import SyntheticDataset
from repro.exceptions import ProfilingError
from repro.prep.pipeline import PrepPipeline
from repro.storage.device import dram


@dataclass(frozen=True)
class PipelineProfile:
    """Component rates of one model/dataset/server combination (samples/s).

    Attributes:
        gpu_rate: Max GPU ingestion rate G (phase 1).
        prep_rate: Pre-processing rate P with all cores (phase 2).
        storage_rate: Storage fetch rate S with a cold cache (phase 3).
        cache_rate: DRAM fetch rate C (phase 3 microbenchmark).
        mean_item_bytes: Average raw item size, for converting to MB/s.
        num_gpus: GPUs the profile was taken with.
        cores: Physical cores the prep phase used.
    """

    gpu_rate: float
    prep_rate: float
    storage_rate: float
    cache_rate: float
    mean_item_bytes: float
    num_gpus: int
    cores: float

    def rate_to_mbps(self, samples_per_s: float) -> float:
        """Convert a samples/s rate to MB/s of raw data (Fig. 1 units)."""
        return samples_per_s * self.mean_item_bytes / 1e6


class DSAnalyzerProfiler:
    """Run the three measurement phases against the simulated substrate.

    Args:
        model: Model to profile.
        dataset: Dataset to profile with.
        server: Server configuration.
        gpu_prep: Whether DALI GPU prep is enabled during the prep phase.
        library: Prep library ("dali" or "pytorch").
    """

    def __init__(self, model: ModelSpec, dataset: SyntheticDataset,
                 server: ServerConfig, gpu_prep: bool = False,
                 library: str = "dali") -> None:
        self._model = model
        self._dataset = dataset
        self._server = server
        self._gpu_prep = gpu_prep
        self._library = library

    def measure_ingestion_rate(self, num_gpus: int | None = None) -> float:
        """Phase 1: max GPU ingestion rate with synthetic data (samples/s)."""
        gpus = num_gpus if num_gpus is not None else self._server.num_gpus
        return self._model.aggregate_gpu_rate(self._server.gpu, gpus,
                                              gpu_prep_active=self._gpu_prep)

    def measure_prep_rate(self, cores: float | None = None,
                          num_gpus: int | None = None) -> float:
        """Phase 2: prep rate with the data cached and compute disabled."""
        gpus = num_gpus if num_gpus is not None else self._server.num_gpus
        pool = self._server.worker_pool(cores=cores, gpu_offload=self._gpu_prep)
        prep = PrepPipeline.for_task(self._dataset.spec.task, library=self._library)
        prep = prep.with_scaled_cost(self._dataset.spec.prep_cost_scale)
        rate = pool.prep_rate(prep, self._dataset.mean_item_bytes,
                              num_gpus_for_offload=gpus)
        if rate <= 0:
            raise ProfilingError("prep rate measurement returned a non-positive rate")
        return rate

    def measure_storage_rate(self) -> float:
        """Phase 3a: cold-cache storage fetch rate (samples/s)."""
        bw = self._server.storage.effective_rate(self._dataset.mean_item_bytes)
        return bw / self._dataset.mean_item_bytes

    def measure_cache_rate(self) -> float:
        """Phase 3b: DRAM fetch rate (samples/s) from the memory microbenchmark."""
        device = dram(self._server.dram_bytes)
        bw = device.effective_rate(self._dataset.mean_item_bytes)
        return bw / self._dataset.mean_item_bytes

    def profile(self, cores: float | None = None,
                num_gpus: int | None = None) -> PipelineProfile:
        """Run all phases and return the combined profile."""
        gpus = num_gpus if num_gpus is not None else self._server.num_gpus
        used_cores = cores if cores is not None else float(self._server.physical_cores)
        return PipelineProfile(
            gpu_rate=self.measure_ingestion_rate(gpus),
            prep_rate=self.measure_prep_rate(cores=cores, num_gpus=gpus),
            storage_rate=self.measure_storage_rate(),
            cache_rate=self.measure_cache_rate(),
            mean_item_bytes=self._dataset.mean_item_bytes,
            num_gpus=gpus,
            cores=used_cores,
        )
