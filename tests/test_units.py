"""Unit tests for the byte/rate/time helpers."""

import math

import pytest

from repro import units


def test_binary_units_are_powers_of_1024():
    assert units.KiB(1) == 1024
    assert units.MiB(1) == 1024 ** 2
    assert units.GiB(1) == 1024 ** 3
    assert units.TiB(2) == 2 * 1024 ** 4


def test_decimal_rates():
    assert units.MBps(530) == 530e6
    assert units.GBps(2) == 2e9


def test_gbps_converts_bits_to_bytes():
    assert units.Gbps(40) == pytest.approx(5e9)


def test_round_trip_reporting_helpers():
    assert units.to_GiB(units.GiB(500)) == pytest.approx(500)
    assert units.to_GB(3e9) == pytest.approx(3.0)
    assert units.to_MBps(units.MBps(15)) == pytest.approx(15)


def test_time_helpers():
    assert units.hours(2) == 7200
    assert units.minutes(3) == 180
    assert units.to_hours(7200) == pytest.approx(2.0)


def test_safe_div_normal_and_zero():
    assert units.safe_div(10, 4) == pytest.approx(2.5)
    assert units.safe_div(10, 0) == 0.0
    assert units.safe_div(10, 0, default=1.5) == 1.5


def test_speedup_is_baseline_over_improved():
    assert units.speedup(100.0, 50.0) == pytest.approx(2.0)
    assert units.speedup(100.0, 100.0) == pytest.approx(1.0)
    assert math.isinf(units.speedup(1.0, 0.0))
