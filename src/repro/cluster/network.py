"""Cluster network model.

Partitioned caching (Sec. 4.2) relies on one observation: the cross-node
network of ML cloud servers (10–40 Gbps Ethernet over the commodity TCP stack)
is several times faster than the random-read bandwidth of a SATA SSD and two
orders of magnitude faster than an HDD.  The model here is a simple
bandwidth + per-request latency link, which is all the partitioned-cache
transfer path needs, plus helpers for the utilisation numbers reported in
Sec. 5.5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class NetworkLink:
    """Point-to-point TCP path between two servers.

    Attributes:
        bandwidth: Achievable application-level bytes/second.
        rtt_s: Round-trip time of one request (TCP over the datacenter
            fabric; sub-millisecond).
        protocol_efficiency: Fraction of the raw link bandwidth that TCP +
            serialisation actually delivers.
    """

    bandwidth: float = units.Gbps(40)
    rtt_s: float = 200e-6
    protocol_efficiency: float = 0.90

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not 0 < self.protocol_efficiency <= 1:
            raise ConfigurationError("protocol efficiency must be in (0, 1]")
        if self.rtt_s < 0:
            raise ConfigurationError("RTT cannot be negative")

    @property
    def effective_bandwidth(self) -> float:
        """Application-visible bytes/second after protocol overheads."""
        return self.bandwidth * self.protocol_efficiency

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to fetch ``nbytes`` from a remote cache in one request."""
        if nbytes < 0:
            raise ConfigurationError("cannot transfer a negative number of bytes")
        return self.rtt_s + nbytes / self.effective_bandwidth

    def transfer_times_array(self, sizes: "np.ndarray") -> "np.ndarray":
        """Per-request transfer times for many remote fetches (vectorised).

        Element-wise identical to :meth:`transfer_time`; used by the bulk
        epoch path of the partitioned loader.
        """
        return self.rtt_s + np.asarray(sizes, dtype=np.float64) / self.effective_bandwidth

    def transfer_rate(self, nbytes: float) -> float:
        """Observed bytes/second for a request of the given size."""
        return units.safe_div(nbytes, self.transfer_time(nbytes))

    def utilisation(self, bytes_moved: float, duration_s: float) -> float:
        """Fraction of link bandwidth used over an interval (Sec. 5.5)."""
        if duration_s <= 0:
            return 0.0
        return (bytes_moved / duration_s) / self.bandwidth


def forty_gbps_ethernet() -> NetworkLink:
    """The 40 Gbps Ethernet of the paper's server SKUs."""
    return NetworkLink(bandwidth=units.Gbps(40))


def ten_gbps_ethernet() -> NetworkLink:
    """A slower 10 Gbps fabric (the lower end of the paper's 10–40 Gbps range)."""
    return NetworkLink(bandwidth=units.Gbps(10))
