"""Table 7 — HP search with a fully cached dataset (ImageNet-1K).

Even with no storage I/O at all, eight concurrent HP-search jobs are slowed by
redundant pre-processing: each job only gets 3 of the 24 cores.  CoorDL's
coordinated prep removes the redundancy and speeds the jobs up by 1.2-1.9x,
the exact factor depending on how far each model's GPU ingestion rate exceeds
a 3-core prep pipeline.  This experiment reproduces the per-model rows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import IMAGE_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE, scaled_dataset
from repro.sim.hp_search import HPSearchScenario
from repro.units import speedup


def run(scale: float = SWEEP_SCALE, num_jobs: int = 8,
        dataset_name: str = "imagenet-1k",
        models: Optional[Sequence[ModelSpec]] = None,
        seed: int = 0) -> ExperimentResult:
    """Reproduce the fully-cached HP-search speedups of Table 7."""
    chosen = list(models) if models is not None else list(IMAGE_MODELS)
    dataset = scaled_dataset(dataset_name, scale, seed)
    result = ExperimentResult(
        experiment_id="tab7",
        title=f"Table 7 — {num_jobs}-job HP search with the dataset fully cached "
              "(Config-SSD-V100)",
        columns=["model", "dali_samples_per_s", "coordl_samples_per_s", "speedup"],
        notes=["paper: DALI per-job speeds 552-1441 samples/s; CoorDL speedups "
               "1.21-1.87x by eliminating redundant prep"],
    )
    # A cache larger than the dataset removes every fetch stall.
    server = config_ssd_v100(cache_bytes=dataset.total_bytes * 1.2)
    for model in chosen:
        scenario = HPSearchScenario(model, dataset, server, num_jobs=num_jobs,
                                    gpus_per_job=1, seed=seed)
        baseline = scenario.run_baseline()
        coordl = scenario.run_coordl()
        result.add_row(
            model=model.name,
            dali_samples_per_s=baseline.per_job_throughput,
            coordl_samples_per_s=coordl.per_job_throughput,
            speedup=speedup(baseline.epoch_time_s, coordl.epoch_time_s),
        )
    return result
