"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class CacheError(ReproError):
    """Base class for cache-related failures."""


class CacheCapacityError(CacheError):
    """An item larger than the total cache capacity was offered to the cache."""


class UnknownItemError(ReproError):
    """A dataset item id was requested that does not exist in the dataset."""


class StagingTimeoutError(ReproError):
    """A job timed out waiting for a minibatch in the cross-job staging area."""


class JobFailedError(ReproError):
    """A coordinated-prep job died and could not be recovered."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SweepPointError(ReproError):
    """One point of a parameter sweep failed to simulate.

    Raised by :meth:`repro.sim.sweep.SweepRunner.run` with the failing
    point's label (or a synthesised description) in the message and the
    original exception chained as ``__cause__`` — including when the point
    ran in a worker process, where a bare ``multiprocessing`` traceback
    would otherwise lose both.

    Attributes:
        point_label: Label/description of the failing sweep point.
        child_traceback: Formatted traceback from the worker process, when
            the point failed in one (``None`` for in-process failures, whose
            traceback is the chained exception's own).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.point_label: str = ""
        self.child_traceback: str | None = None


class ProfilingError(ReproError):
    """DS-Analyzer could not complete a measurement phase."""
