"""Figure 9(a) — single-server training: CoorDL (MinIO) versus DALI.

For each model on its paper-assigned large dataset (OpenImages / FMA), the
server can cache roughly 65 % of the data.  CoorDL's MinIO cache removes the
page-cache thrashing, cutting per-epoch disk reads to the capacity minimum
and speeding training up by up to ~1.8x over DALI-seq (less over the stronger
DALI-shuffle baseline).  This experiment reports epoch times and speedups for
all three loaders on either server SKU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALL_STALL_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE, scaled_dataset
from repro.sim.single_server import SingleServerTraining
from repro.units import speedup


def run(scale: float = SWEEP_SCALE, cache_fraction: float = 0.65,
        models: Optional[Sequence[ModelSpec]] = None, server_name: str = "ssd-v100",
        num_epochs: int = 2, seed: int = 0) -> ExperimentResult:
    """Reproduce the single-server speedup bars of Fig. 9(a)."""
    chosen = list(models) if models is not None else list(ALL_STALL_MODELS)
    if server_name == "ssd-v100":
        base_server = config_ssd_v100()
    else:
        base_server = config_hdd_1080ti()
    result = ExperimentResult(
        experiment_id="fig9a",
        title=f"Fig. 9(a) — single-server training speedup vs DALI ({base_server.name}, "
              f"{cache_fraction:.0%} cache)",
        columns=["model", "dataset", "dali_seq_epoch_s", "dali_shuffle_epoch_s",
                 "coordl_epoch_s", "speedup_vs_seq", "speedup_vs_shuffle"],
        notes=["paper: up to 1.8x over DALI-seq (ShuffleNet/SSD) and ~1.2-1.5x over "
               "DALI-shuffle on Config-SSD-V100; 2.1x/1.5x for ResNet50 on HDD"],
    )
    for model in chosen:
        dataset = scaled_dataset(model.default_dataset, scale, seed)
        server = base_server.with_cache_bytes(dataset.total_bytes * cache_fraction)
        training = SingleServerTraining(model, dataset, server, num_epochs=num_epochs)
        seq = training.run("dali-seq", seed=seed).run.steady_epoch()
        shuffle = training.run("dali-shuffle", seed=seed).run.steady_epoch()
        coordl = training.run("coordl", seed=seed).run.steady_epoch()
        result.add_row(
            model=model.name,
            dataset=dataset.spec.name,
            dali_seq_epoch_s=seq.epoch_time_s,
            dali_shuffle_epoch_s=shuffle.epoch_time_s,
            coordl_epoch_s=coordl.epoch_time_s,
            speedup_vs_seq=speedup(seq.epoch_time_s, coordl.epoch_time_s),
            speedup_vs_shuffle=speedup(shuffle.epoch_time_s, coordl.epoch_time_s),
        )
    return result
