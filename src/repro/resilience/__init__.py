"""Runtime resilience: deterministic fault injection and recovery.

Three small layers, composable and individually inert when unused:

* :mod:`repro.resilience.faults` — :class:`FaultPlan` (a declarative,
  JSON-round-trippable chaos schedule) and :class:`FaultInjector` (its
  thread-safe, counter-driven runtime), activated per-object via kwargs or
  process-wide via the ``REPRO_FAULT_PLAN`` environment variable;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` /
  :func:`call_with_retry` / :func:`is_transient`, the store's
  retry-with-backoff for transient backend errors;
* :mod:`repro.resilience.supervise` — :class:`SupervisedExecutor`, the
  process pool that detects dead workers, rebuilds itself, and re-runs
  lost chunks byte-identically under a bounded respawn budget
  (:class:`~repro.exceptions.WorkerLostError` when it runs out).

See docs/ARCHITECTURE.md ("Failure domains & recovery") for the fault
matrix: which faults are injected where, how each is detected, what
recovers it, and when recovery escalates to an error.
"""

from repro.exceptions import (
    PermanentFaultError,
    ResilienceError,
    TransientFaultError,
    WorkerLostError,
)
from repro.resilience.faults import (
    FAULT_PLAN_ENV_VAR,
    FaultCounters,
    FaultInjector,
    FaultPlan,
    KillSchedule,
    ServeStall,
    StoreFault,
    active_injector,
    clear_installed,
    install_plan,
)
from repro.resilience.retry import (
    NO_RETRY,
    RetryPolicy,
    call_with_retry,
    is_transient,
)
from repro.resilience.supervise import (
    DEFAULT_MAX_RESPAWNS,
    SupervisedExecutor,
)

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "DEFAULT_MAX_RESPAWNS",
    "NO_RETRY",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "KillSchedule",
    "PermanentFaultError",
    "ResilienceError",
    "RetryPolicy",
    "ServeStall",
    "StoreFault",
    "SupervisedExecutor",
    "TransientFaultError",
    "WorkerLostError",
    "active_injector",
    "call_with_retry",
    "clear_installed",
    "install_plan",
    "is_transient",
]
