"""Unit tests for DS-Analyzer: profiler, predictor, what-if analyses, reports."""

import pytest

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18, RESNET50
from repro.dsanalyzer.predictor import Bottleneck, DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.dsanalyzer.report import (
    format_prediction,
    format_profile,
    format_recommendation,
    format_sweep,
    summarize,
)
from repro.dsanalyzer.whatif import (
    cores_needed_per_gpu,
    optimal_cache_fraction,
    sweep_cache_fractions,
    with_faster_gpu,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def profile(small_dataset, ssd_server):
    return DSAnalyzerProfiler(ALEXNET, small_dataset, ssd_server).profile()


class TestProfiler:
    def test_phase_rates_are_ordered_sensibly(self, profile):
        # DRAM is far faster than the SSD, which is faster than one HDD would be.
        assert profile.cache_rate > 10 * profile.storage_rate
        assert profile.gpu_rate > 0 and profile.prep_rate > 0

    def test_gpu_prep_increases_prep_rate(self, small_dataset, ssd_server):
        cpu = DSAnalyzerProfiler(RESNET18, small_dataset, ssd_server, gpu_prep=False)
        gpu = DSAnalyzerProfiler(RESNET18, small_dataset, ssd_server, gpu_prep=True)
        assert gpu.measure_prep_rate() > cpu.measure_prep_rate()

    def test_prep_rate_scales_with_cores(self, small_dataset, ssd_server):
        profiler = DSAnalyzerProfiler(RESNET18, small_dataset, ssd_server)
        assert profiler.measure_prep_rate(cores=24) == pytest.approx(
            8 * profiler.measure_prep_rate(cores=3), rel=0.05)

    def test_rate_to_mbps(self, profile):
        mbps = profile.rate_to_mbps(1000.0)
        assert mbps == pytest.approx(1000.0 * profile.mean_item_bytes / 1e6)


class TestPredictor:
    def test_fetch_rate_grows_with_cache_fraction(self, profile):
        predictor = DataStallPredictor(profile)
        rates = [predictor.effective_fetch_rate(f) for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert rates == sorted(rates)
        assert rates[0] == pytest.approx(profile.storage_rate, rel=0.01)

    def test_zero_cache_is_io_bound_full_cache_is_not(self, profile):
        predictor = DataStallPredictor(profile)
        assert predictor.predict(0.0).bottleneck is Bottleneck.FETCH
        assert predictor.predict(1.0).bottleneck in (Bottleneck.PREP, Bottleneck.GPU)

    def test_training_speed_is_min_of_rates(self, profile):
        predictor = DataStallPredictor(profile)
        p = predictor.predict(0.4)
        assert p.training_speed == pytest.approx(
            min(p.fetch_rate, p.prep_rate, p.gpu_rate))

    def test_stall_fractions_in_range(self, profile):
        predictor = DataStallPredictor(profile)
        for fraction in (0.0, 0.3, 0.7, 1.0):
            p = predictor.predict(fraction)
            assert 0.0 <= p.fetch_stall_fraction <= 1.0
            assert 0.0 <= p.prep_stall_fraction <= 1.0

    def test_thrashing_factor_lowers_fetch_rate(self, profile):
        clean = DataStallPredictor(profile)
        thrashy = DataStallPredictor(profile, thrashing_factor=0.2)
        assert thrashy.effective_fetch_rate(0.5) < clean.effective_fetch_rate(0.5)

    def test_epoch_time(self, profile):
        predictor = DataStallPredictor(profile)
        assert predictor.epoch_time(0.5, 1000) == pytest.approx(
            1000 / predictor.predict_training_speed(0.5))

    def test_validation(self, profile):
        with pytest.raises(ConfigurationError):
            DataStallPredictor(profile, thrashing_factor=1.5)
        with pytest.raises(ConfigurationError):
            DataStallPredictor(profile).effective_fetch_rate(1.5)


class TestWhatIf:
    def test_optimal_cache_fraction_is_where_io_bound_ends(self, profile, small_dataset):
        predictor = DataStallPredictor(profile)
        rec = optimal_cache_fraction(predictor, small_dataset, resolution=0.05)
        assert 0.0 < rec.optimal_cache_fraction <= 1.0
        assert rec.bottleneck_beyond_optimum is not Bottleneck.FETCH
        # One step below the optimum the job is still IO bound (if optimum > 0).
        below = predictor.predict(max(0.0, rec.optimal_cache_fraction - 0.05))
        if rec.optimal_cache_fraction >= 0.05:
            assert below.bottleneck is Bottleneck.FETCH

    def test_sweep_sizes(self, profile):
        predictor = DataStallPredictor(profile)
        sweep = sweep_cache_fractions(predictor, [0.0, 0.5, 1.0])
        assert len(sweep) == 3

    def test_cores_needed_ranks_models_correctly(self, tiny_dataset, ssd_server):
        """Fig. 4: light models need far more prep cores per GPU than ResNet50.

        Uses the ImageNet-like (120 KB items) dataset, matching the paper's
        Fig. 4 setting where ResNet50 needs only 3-4 cores per GPU.
        """
        light = cores_needed_per_gpu(ALEXNET, tiny_dataset, ssd_server)
        heavy = cores_needed_per_gpu(RESNET50, tiny_dataset, ssd_server)
        assert heavy <= 5
        assert light > 2 * heavy

    def test_faster_gpu_worsens_stalls(self, profile):
        """Sec. 3.4: doubling GPU speed without faster fetch/prep adds stalls."""
        base = DataStallPredictor(profile).predict(0.35)
        future = DataStallPredictor(with_faster_gpu(profile, 2.0)).predict(0.35)
        assert future.gpu_rate == pytest.approx(2 * base.gpu_rate)
        assert future.training_speed <= 2 * base.training_speed
        total_stall_base = base.fetch_stall_fraction + base.prep_stall_fraction
        total_stall_future = future.fetch_stall_fraction + future.prep_stall_fraction
        assert total_stall_future >= total_stall_base

    def test_with_faster_gpu_validation(self, profile):
        with pytest.raises(ConfigurationError):
            with_faster_gpu(profile, 0)


class TestReports:
    def test_report_formatting_contains_key_fields(self, profile, small_dataset):
        predictor = DataStallPredictor(profile)
        assert "GPU ingestion rate" in format_profile(profile)
        assert "cache=" in format_prediction(predictor.predict(0.5))
        sweep_text = format_sweep(sweep_cache_fractions(predictor, [0.0, 1.0]))
        assert sweep_text.count("cache=") == 2
        rec = optimal_cache_fraction(predictor, small_dataset)
        assert "Recommended cache" in format_recommendation(rec)
        assert "Fetch stall" in summarize(predictor, 0.35)
