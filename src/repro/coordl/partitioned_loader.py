"""CoorDL distributed loader: partitioned caching across servers (Sec. 4.2).

One :class:`PartitionedCoorDLLoader` instance represents the data pipeline of
one *server* (rank) in a multi-server data-parallel job.  Local MinIO misses
are routed to the remote server that caches the item (metadata directory in
:class:`~repro.cache.partitioned.PartitionedCacheGroup`) over the TCP network
link, and only fall back to local storage when no server caches the item.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cache.partitioned import LookupSource, PartitionedCacheGroup
from repro.cluster.network import NetworkLink
from repro.cluster.server import ServerConfig
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import BatchSampler, DistributedSampler
from repro.pipeline.base import BatchFetchResult, DataLoader
from repro.prep.pipeline import PrepPipeline
from repro.storage.filestore import FileStore


class PartitionedCoorDLLoader(DataLoader):
    """Per-server CoorDL loader participating in a partitioned cache group."""

    name = "coordl-partitioned"

    def __init__(self, *args, group: PartitionedCacheGroup, rank: int,
                 network: NetworkLink, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._group = group
        self._rank = rank
        self._network = network

    @property
    def rank(self) -> int:
        """This loader's server index within the distributed job."""
        return self._rank

    @property
    def group(self) -> PartitionedCacheGroup:
        """The job-wide partitioned cache group."""
        return self._group

    @classmethod
    def build_group(cls, dataset: SyntheticDataset, servers: List[ServerConfig],
                    batch_size: int, gpu_prep: bool = False,
                    seed: int = 0) -> List["PartitionedCoorDLLoader"]:
        """Build one loader per server, all sharing a partitioned cache group.

        Args:
            dataset: Dataset of the distributed job.
            servers: Participating servers (one loader per entry).
            batch_size: Per-server batch size (per-GPU batch x GPUs/server).
            gpu_prep: Offload prep to the GPUs.
            seed: Shared sampler/shard seed.
        """
        group = PartitionedCacheGroup(
            dataset, [s.cache_bytes for s in servers], seed=seed)
        group.populate_from_shards()
        loaders: List[PartitionedCoorDLLoader] = []
        for rank, server in enumerate(servers):
            prep = PrepPipeline.for_task(dataset.spec.task, library="dali")
            prep = prep.with_scaled_cost(dataset.spec.prep_cost_scale)
            workers = server.worker_pool(gpu_offload=gpu_prep)
            sampler = DistributedSampler(len(dataset), num_replicas=len(servers),
                                         rank=rank, seed=seed)
            loaders.append(cls(
                dataset=dataset,
                store=FileStore(dataset, server.storage),
                cache=group.caches[rank],
                batch_sampler=BatchSampler(sampler, batch_size),
                prep=prep,
                workers=workers,
                num_gpus=server.num_gpus,
                group=group,
                rank=rank,
                network=server.network,
            ))
        return loaders

    def fetch_batch(self, batch: np.ndarray, at_time: float = 0.0) -> BatchFetchResult:
        """Fetch one minibatch: local MinIO, then remote cache, then storage."""
        duration = 0.0
        hits = 0
        misses = 0
        disk_bytes = 0.0
        cache_bytes = 0.0
        remote_bytes = 0.0
        for raw_id in batch:
            item_id = int(raw_id)
            lookup = self._group.lookup(self._rank, item_id)
            size = lookup.size_bytes
            if lookup.source is LookupSource.LOCAL_CACHE:
                hits += 1
                cache_bytes += size
                duration += self._dram.read_time(size)
                self._io.record_cache(size)
            elif lookup.source is LookupSource.REMOTE_CACHE:
                # A remote-cache hit avoids the fetch stall but is not a local
                # cache hit; count it separately.
                misses += 1
                remote_bytes += size
                duration += self._network.transfer_time(size)
                self._io.record_remote(size)
            else:
                misses += 1
                disk_bytes += size
                duration += self._store.read_bytes(size, at_time=at_time + duration)
                self._io.record_disk(size, at_time=at_time + duration)
                self._group.admit_local(self._rank, item_id)
        return BatchFetchResult(
            duration_s=duration,
            hits=hits,
            misses=misses,
            disk_bytes=disk_bytes,
            cache_bytes=cache_bytes,
            remote_bytes=remote_bytes,
        )
