"""Pipelined epoch simulation engine.

DNN training overlaps data fetch, pre-processing and GPU compute (Sec. 2).
The engine models one epoch as a three-stage pipeline with a bounded prefetch
queue between the data stages and the GPU:

* stage F — fetch batch ``b`` (cache + storage times from the loader),
* stage P — pre-process batch ``b`` (worker-pool time from the loader),
* stage G — GPU compute on batch ``b``.

Completion-time recurrence (per batch ``b``)::

    done_F[b] = max(done_F[b-1], done_G[b-depth]) + t_F(b)
    done_P[b] = max(done_P[b-1], done_F[b])       + t_P(b)
    done_G[b] = max(done_G[b-1], done_P[b])       + t_G(b)

The bounded depth is what gives DALI its characteristic behaviour of racing
ahead early in an epoch while the cache is still hitting and then throttling
to storage speed (Fig. 11).

Stall attribution follows DS-Analyzer's differential method: the same
per-batch time arrays are re-run with (a) fetch at DRAM speed to obtain the
prep-limited epoch time and (b) GPU-only time; fetch stall and prep stall are
the successive differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.compute.gpu import GPUSpec
from repro.compute.model_zoo import ModelSpec
from repro.exceptions import ConfigurationError, SimulationError
from repro.pipeline.base import DataLoader
from repro.pipeline.stats import EpochStats
from repro.storage.iostats import IOStats


@dataclass
class BatchTimes:
    """Per-batch stage durations collected while simulating an epoch."""

    fetch_s: List[float]
    cached_fetch_s: List[float]
    prep_s: List[float]
    gpu_s: List[float]

    def num_batches(self) -> int:
        """Number of batches in the epoch."""
        return len(self.gpu_s)


def pipeline_makespan(stage_times: Sequence[Sequence[float]], queue_depth: int = 4) -> float:
    """Makespan of an N-stage pipeline with a bounded prefetch queue.

    Args:
        stage_times: One sequence of per-batch durations per stage, ordered
            from the first (producer) stage to the last (consumer) stage.
        queue_depth: How many batches the first stage may run ahead of the
            last stage (the prefetch queue size of DALI / PyTorch DL).

    Returns:
        Completion time of the last batch in the last stage.
    """
    if queue_depth < 1:
        raise ConfigurationError("queue depth must be at least 1")
    stages = [list(s) for s in stage_times]
    if not stages:
        raise ConfigurationError("need at least one stage")
    num_batches = len(stages[0])
    if any(len(s) != num_batches for s in stages):
        raise SimulationError("all stages must have the same number of batches")
    if num_batches == 0:
        return 0.0
    num_stages = len(stages)
    done = [[0.0] * num_batches for _ in range(num_stages)]
    for b in range(num_batches):
        for s in range(num_stages):
            prev_same_stage = done[s][b - 1] if b > 0 else 0.0
            prev_stage = done[s - 1][b] if s > 0 else 0.0
            backpressure = 0.0
            if s == 0 and b >= queue_depth:
                backpressure = done[num_stages - 1][b - queue_depth]
            start = max(prev_same_stage, prev_stage, backpressure)
            done[s][b] = start + stages[s][b]
    return done[num_stages - 1][num_batches - 1]


class PipelineSimulator:
    """Simulates epochs of one training job driven by a data loader.

    Args:
        model: The DNN being trained (supplies the GPU ingestion rate).
        gpu: GPU type of the server.
        queue_depth: Prefetch queue size between the data pipeline and GPU.
    """

    def __init__(self, model: ModelSpec, gpu: GPUSpec, queue_depth: int = 4) -> None:
        self._model = model
        self._gpu = gpu
        self._queue_depth = queue_depth

    @property
    def model(self) -> ModelSpec:
        """The DNN being trained."""
        return self._model

    @property
    def gpu(self) -> GPUSpec:
        """GPU type of the server."""
        return self._gpu

    def gpu_batch_time(self, loader: DataLoader, batch_size: int) -> float:
        """GPU compute seconds for one batch of the given size."""
        rate = self._model.aggregate_gpu_rate(
            self._gpu, loader.num_gpus, gpu_prep_active=loader.uses_gpu_prep)
        return batch_size / rate

    def collect_batch_times(self, loader: DataLoader, epoch_index: int) -> BatchTimes:
        """Run the fetch path for one epoch and collect per-batch durations.

        Fetching mutates the loader's cache, so the cache state after this
        call reflects having trained the epoch (warm cache for the next one).
        """
        fetch_s: List[float] = []
        cached_fetch_s: List[float] = []
        prep_s: List[float] = []
        gpu_s: List[float] = []
        clock = 0.0
        for batch in loader.batches(epoch_index):
            result = loader.fetch_batch(batch, at_time=clock)
            fetch_s.append(result.duration_s)
            cached_fetch_s.append(loader.cached_fetch_time(batch))
            prep_s.append(loader.prep_batch_time(batch))
            gpu_s.append(self.gpu_batch_time(loader, len(batch)))
            clock += result.duration_s
        return BatchTimes(fetch_s, cached_fetch_s, prep_s, gpu_s)

    def run_epoch(self, loader: DataLoader, epoch_index: int) -> EpochStats:
        """Simulate one epoch and return its timing/IO breakdown."""
        loader.reset_io()
        hits_before = loader.cache.stats.hits
        misses_before = loader.cache.stats.misses
        times = self.collect_batch_times(loader, epoch_index)
        samples = sum(len(b) for b in loader.batches(epoch_index))

        epoch_time = pipeline_makespan(
            [times.fetch_s, times.prep_s, times.gpu_s], self._queue_depth)
        prep_limited = pipeline_makespan(
            [times.cached_fetch_s, times.prep_s, times.gpu_s], self._queue_depth)
        gpu_time = float(np.sum(times.gpu_s))

        io = IOStats(
            disk_bytes=loader.io.disk_bytes,
            disk_requests=loader.io.disk_requests,
            cache_bytes=loader.io.cache_bytes,
            cache_requests=loader.io.cache_requests,
            remote_bytes=loader.io.remote_bytes,
            remote_requests=loader.io.remote_requests,
        )
        io.timeline = list(loader.io.timeline)

        return EpochStats(
            epoch_time_s=epoch_time,
            gpu_time_s=gpu_time,
            prep_limited_time_s=min(prep_limited, epoch_time),
            samples=samples,
            io=io,
            cache_hits=loader.cache.stats.hits - hits_before,
            cache_misses=loader.cache.stats.misses - misses_before,
        )

    def run_epochs(self, loader: DataLoader, num_epochs: int,
                   start_epoch: int = 0) -> List[EpochStats]:
        """Simulate several consecutive epochs (cache state carries over)."""
        if num_epochs <= 0:
            raise ConfigurationError("need at least one epoch")
        return [self.run_epoch(loader, start_epoch + e) for e in range(num_epochs)]
