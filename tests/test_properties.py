"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache
from repro.cache.page_cache import PageCache
from repro.cache.partitioned import LookupSource, PartitionedCacheGroup
from repro.coordl.coordinated_prep import CoordinatedPrepPlan
from repro.coordl.staging import StagingArea
from repro.datasets.catalog import DatasetSpec
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import (
    BatchSampler,
    DistributedSampler,
    RandomSampler,
    ShuffleBufferSampler,
    verify_epoch_invariant,
)
from repro.sim.engine import pipeline_makespan, pipeline_makespan_reference

# Shared strategies ---------------------------------------------------------

item_counts = st.integers(min_value=1, max_value=300)
seeds = st.integers(min_value=0, max_value=2**16)
sizes = st.floats(min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False)


def _access_pattern(num_items: int, length: int, seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_items, size=length).tolist()


# Samplers -------------------------------------------------------------------

class TestSamplerProperties:
    @given(n=item_counts, seed=seeds, epoch=st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_random_sampler_always_yields_a_permutation(self, n, seed, epoch):
        order = RandomSampler(n, seed=seed).epoch(epoch)
        assert verify_epoch_invariant(order, n)

    @given(n=item_counts, buffer=st.integers(1, 64), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_shuffle_buffer_sampler_preserves_the_epoch_invariant(self, n, buffer, seed):
        order = ShuffleBufferSampler(n, buffer_size=buffer, seed=seed).epoch(0)
        assert verify_epoch_invariant(order, n)

    @given(n=st.integers(2, 300), replicas=st.integers(1, 8), seed=seeds,
           epoch=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_distributed_shards_partition_every_epoch(self, n, replicas, seed, epoch):
        replicas = min(replicas, n)
        shards = [DistributedSampler(n, replicas, r, seed=seed).epoch(epoch)
                  for r in range(replicas)]
        assert verify_epoch_invariant(np.concatenate(shards), n)

    @given(n=item_counts, batch=st.integers(1, 64), drop_last=st.booleans(), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_batch_sampler_covers_or_truncates_consistently(self, n, batch, drop_last, seed):
        batcher = BatchSampler(RandomSampler(n, seed=seed), batch, drop_last=drop_last)
        batches = batcher.epoch(0)
        assert len(batches) == batcher.batches_per_epoch()
        flattened = np.concatenate(batches) if batches else np.array([], dtype=int)
        if drop_last:
            assert len(flattened) == (n // batch) * batch
            assert len(set(flattened.tolist())) == len(flattened)
        else:
            assert verify_epoch_invariant(flattened, n)


# Caches ----------------------------------------------------------------------

class TestCacheProperties:
    @given(capacity=st.floats(min_value=100.0, max_value=1e5),
           accesses=st.lists(st.tuples(st.integers(0, 50), sizes), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_lru_never_exceeds_capacity(self, capacity, accesses):
        cache = LRUCache(capacity)
        for item, size in accesses:
            if not cache.lookup(item):
                cache.admit(item, size)
            assert cache.used_bytes <= capacity + 1e-9

    @given(capacity=st.floats(min_value=100.0, max_value=1e5),
           accesses=st.lists(st.tuples(st.integers(0, 50), sizes), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_minio_never_exceeds_capacity_and_never_evicts(self, capacity, accesses):
        cache = MinIOCache(capacity)
        admitted = set()
        for item, size in accesses:
            hit = cache.lookup(item)
            assert hit == (item in admitted)
            if not hit and cache.admit(item, size):
                admitted.add(item)
            assert cache.used_bytes <= capacity + 1e-9
        assert cache.stats.evictions == 0
        # Everything admitted is still resident (the MinIO invariant).
        for item in admitted:
            assert item in cache

    @given(capacity_pages=st.integers(2, 40), num_items=st.integers(1, 60),
           length=st.integers(1, 300), seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_page_cache_capacity_and_stats_invariants(self, capacity_pages, num_items,
                                                      length, seed):
        cache = PageCache(capacity_pages * 4096.0)
        pattern = _access_pattern(num_items, length, seed)
        for item in pattern:
            if not cache.lookup(item):
                cache.admit(item, 4096.0)
            assert cache.used_bytes <= cache.capacity_bytes + 1e-9
            assert cache.active_bytes <= cache.capacity_bytes + 1e-9
        assert cache.stats.accesses == length
        assert cache.stats.hits + cache.stats.misses == length

    @given(fraction=st.floats(min_value=0.1, max_value=0.9),
           num_items=st.integers(20, 150), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_minio_epoch_hits_equal_cached_items(self, fraction, num_items, seed):
        """The defining MinIO property for any dataset and cache fraction."""
        spec = DatasetSpec("prop", "image_classification", num_items, 10_000.0,
                           item_size_cv=0.3)
        dataset = SyntheticDataset(spec, seed=seed)
        cache = MinIOCache(dataset.total_bytes * fraction)
        sampler = RandomSampler(num_items, seed=seed)
        for item in sampler.epoch(0):      # warm-up epoch
            item = int(item)
            if not cache.lookup(item):
                cache.admit(item, dataset.item_size(item))
        resident = len(list(cache.cached_items()))
        cache.reset_stats()
        for item in sampler.epoch(1):
            item = int(item)
            if not cache.lookup(item):
                cache.admit(item, dataset.item_size(item))
        assert cache.stats.hits == resident

    @given(fraction=st.floats(min_value=0.1, max_value=0.9),
           num_items=st.integers(30, 150), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_minio_steady_state_misses_never_above_page_cache(self, fraction, num_items,
                                                              seed):
        """MinIO is at least as effective as the page cache for DNN epochs."""
        spec = DatasetSpec("prop2", "image_classification", num_items, 10_000.0,
                           item_size_cv=0.2)
        dataset = SyntheticDataset(spec, seed=seed)
        minio = MinIOCache(dataset.total_bytes * fraction)
        page = PageCache(dataset.total_bytes * fraction, page_bytes=1.0)
        sampler = RandomSampler(num_items, seed=seed)
        for epoch in range(3):
            if epoch == 2:
                minio.reset_stats()
                page.reset_stats()
            for item in sampler.epoch(epoch):
                item = int(item)
                size = dataset.item_size(item)
                if not minio.lookup(item):
                    minio.admit(item, size)
                if not page.lookup(item):
                    page.admit(item, size)
        assert minio.stats.misses <= page.stats.misses


# Coordinated prep -------------------------------------------------------------

class TestCoordinationProperties:
    @given(num_items=st.integers(4, 200), num_jobs=st.integers(1, 8),
           batch=st.integers(1, 32), epoch=st.integers(0, 3), seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_plan_always_covers_dataset_exactly_once(self, num_items, num_jobs, batch,
                                                     epoch, seed):
        spec = DatasetSpec("plan", "image_classification", num_items, 10_000.0)
        dataset = SyntheticDataset(spec, seed=0)
        plan = CoordinatedPrepPlan(dataset, num_jobs, batch, epoch=epoch, seed=seed)
        assert plan.covers_dataset_exactly_once()
        assert plan.unique_item_fetches() == num_items

    @given(num_jobs=st.integers(1, 6), num_batches=st.integers(1, 30),
           bytes_per_batch=st.floats(1.0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_staging_area_is_empty_after_full_consumption(self, num_jobs, num_batches,
                                                          bytes_per_batch):
        staging = StagingArea(num_jobs)
        for batch_id in range(num_batches):
            staging.stage(batch_id, 0, batch_id % num_jobs, [batch_id], bytes_per_batch)
            for job in range(num_jobs):
                staging.consume(job, batch_id)
        assert staging.staged_batches == 0
        assert staging.current_bytes == pytest.approx(0.0, abs=1e-6)
        assert staging.consumptions == num_jobs * num_batches


# Pipeline makespan -------------------------------------------------------------

class TestMakespanProperties:
    @given(times=st.lists(
        st.tuples(st.floats(0.001, 1.0), st.floats(0.001, 1.0), st.floats(0.001, 1.0)),
        min_size=1, max_size=60),
        depth=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounded_by_stage_sums_and_serial_time(self, times, depth):
        fetch = [t[0] for t in times]
        prep = [t[1] for t in times]
        gpu = [t[2] for t in times]
        makespan = pipeline_makespan([fetch, prep, gpu], queue_depth=depth)
        serial = sum(fetch) + sum(prep) + sum(gpu)
        bottleneck = max(sum(fetch), sum(prep), sum(gpu))
        assert bottleneck - 1e-9 <= makespan <= serial + 1e-9

    @given(times=st.lists(st.floats(0.001, 1.0), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_makespan_monotone_in_stage_times(self, times):
        base = pipeline_makespan([times, times, times])
        slower = pipeline_makespan([[2 * t for t in times], times, times])
        assert slower >= base

    @given(num_stages=st.integers(1, 5), num_batches=st.integers(0, 80),
           depth=st.integers(1, 100), seed=seeds)
    @settings(max_examples=120, deadline=None)
    def test_numpy_kernel_matches_reference(self, num_stages, num_batches, depth, seed):
        """The vectorised kernel equals the per-batch recurrence exactly."""
        rng = np.random.default_rng(seed)
        times = rng.uniform(1e-4, 5.0, size=(num_stages, num_batches))
        fast = pipeline_makespan(times, queue_depth=depth, kernel="numpy")
        reference = pipeline_makespan_reference(times, queue_depth=depth)
        assert fast == pytest.approx(reference, abs=1e-9)
        # "auto" must agree with both, whichever kernel it dispatches to.
        assert pipeline_makespan(times, queue_depth=depth) == pytest.approx(
            reference, abs=1e-9)

    @given(num_items=st.integers(1, 400), seed=seeds,
           capacity=st.floats(min_value=0.0, max_value=5e6),
           repeats=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_minio_bulk_epoch_matches_per_item_lookups(self, num_items, seed,
                                                       capacity, repeats):
        """Vectorised MinIO epochs equal per-item lookup+admit, epoch by epoch."""
        spec = DatasetSpec("bulk", "image_classification", num_items, 10_000.0,
                           item_size_cv=0.4)
        dataset = SyntheticDataset(spec, seed=seed)
        scalar, bulk = MinIOCache(capacity), MinIOCache(capacity)
        sampler = RandomSampler(num_items, seed=seed)
        for epoch in range(repeats):
            order = sampler.epoch(epoch)
            sizes = dataset.item_sizes(order)
            scalar_hits = []
            for item, size in zip(order.tolist(), sizes.tolist()):
                hit = scalar.lookup(item)
                scalar_hits.append(hit)
                if not hit:
                    scalar.admit(item, size)
            bulk_hits = bulk.bulk_epoch_hits(order, sizes)
            assert bulk_hits.tolist() == scalar_hits
            assert sorted(bulk.cached_items()) == sorted(scalar.cached_items())
            assert bulk.used_bytes == pytest.approx(scalar.used_bytes)
            for field in ("hits", "misses", "insertions", "evictions", "rejected"):
                assert getattr(bulk.stats, field) == getattr(scalar.stats, field)

    @given(num_items=st.integers(1, 60), num_passes=st.integers(1, 4),
           headroom=st.floats(min_value=1.0, max_value=2.0), seed=seeds,
           warm=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_page_cache_saturating_bulk_matches_per_item_walk(
            self, num_items, num_passes, headroom, seed, warm):
        """The no-eviction closed form equals the lookup/admit walk exactly."""
        spec = DatasetSpec("sat", "image_classification", num_items, 9_000.0,
                           item_size_cv=0.5)
        dataset = SyntheticDataset(spec, seed=seed)
        pages = np.ceil(dataset.item_sizes(np.arange(num_items)) / 4096.0)
        capacity = float(pages.sum()) * 4096.0 * headroom
        scalar, bulk = PageCache(capacity), PageCache(capacity)
        rng = np.random.default_rng(seed)
        stream = np.concatenate([rng.permutation(num_items)
                                 for _ in range(num_passes)]).astype(np.int64)
        if warm:  # pre-populate both caches identically
            for item in range(0, num_items, 2):
                size = dataset.item_size(item)
                for cache in (scalar, bulk):
                    if not cache.lookup(item):
                        cache.admit(item, size)
            scalar.reset_stats()
            bulk.reset_stats()
        sizes = dataset.item_sizes(stream)
        scalar_hits = []
        for item, size in zip(stream.tolist(), sizes.tolist()):
            hit = scalar.lookup(item)
            scalar_hits.append(hit)
            if not hit:
                scalar.admit(item, size)
        bulk_hits = bulk.bulk_saturating_hits(stream, sizes)
        assert bulk_hits is not None
        assert bulk_hits.tolist() == scalar_hits
        assert sorted(bulk.cached_items()) == sorted(scalar.cached_items())
        assert bulk.used_bytes == pytest.approx(scalar.used_bytes)
        assert bulk.evictions == scalar.evictions == 0
        for field in ("hits", "misses", "insertions", "rejected"):
            assert getattr(bulk.stats, field) == getattr(scalar.stats, field)
        assert bulk.stats.hit_bytes == pytest.approx(scalar.stats.hit_bytes)

    def test_page_cache_saturating_bulk_declines_when_eviction_possible(self):
        """Eviction-prone streams return None with no side effects."""
        cache = PageCache(8 * 4096.0)
        stream = np.arange(16, dtype=np.int64)
        sizes = np.full(16, 4096.0)
        assert cache.bulk_saturating_hits(stream, sizes) is None
        assert cache.stats.accesses == 0
        assert cache.used_bytes == 0.0

    @given(num_items=st.integers(2, 200), num_servers=st.integers(1, 4),
           fraction=st.floats(min_value=0.05, max_value=1.3),
           skew=st.floats(min_value=0.2, max_value=1.0),
           seed=seeds, epochs=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_partitioned_bulk_epoch_matches_per_item_lookups(
            self, num_items, num_servers, fraction, skew, seed, epochs):
        """Bulk partitioned epochs equal per-item lookup+admit_local, rank by rank.

        ``fraction`` sweeps miss-heavy (tiny caches) through remote-hit-heavy
        (aggregate coverage) regimes; ``skew`` unbalances the per-server
        budgets so mixed cache states appear.
        """
        num_servers = min(num_servers, num_items)
        spec = DatasetSpec("part", "image_classification", num_items, 10_000.0,
                           item_size_cv=0.4)
        dataset = SyntheticDataset(spec, seed=seed)
        budget = dataset.total_bytes * fraction / num_servers
        capacities = [budget * (skew if s % 2 else 1.0) for s in range(num_servers)]
        scalar = PartitionedCacheGroup(dataset, capacities, seed=seed)
        bulk = PartitionedCacheGroup(dataset, capacities, seed=seed)
        scalar.populate_from_shards()
        bulk.populate_from_shards()
        for epoch in range(epochs):
            for rank in range(num_servers):
                order = DistributedSampler(num_items, num_servers, rank,
                                           seed=seed).epoch(epoch)
                sizes = dataset.item_sizes(order)
                sources = []
                for item, size in zip(order.tolist(), sizes.tolist()):
                    lookup = scalar.lookup(rank, item)
                    sources.append(lookup.source)
                    if lookup.source is LookupSource.STORAGE:
                        scalar.admit_local(rank, item)
                local, remote = bulk.bulk_epoch_lookup(rank, order, sizes)
                assert local.tolist() == [s is LookupSource.LOCAL_CACHE
                                          for s in sources]
                assert remote.tolist() == [s is LookupSource.REMOTE_CACHE
                                           for s in sources]
                for server in range(num_servers):
                    ref_cache, bulk_cache = scalar.caches[server], bulk.caches[server]
                    assert sorted(bulk_cache.cached_items()) == sorted(
                        ref_cache.cached_items())
                    assert bulk_cache.used_bytes == pytest.approx(ref_cache.used_bytes)
                    for field in ("hits", "misses", "insertions", "evictions",
                                  "rejected"):
                        assert getattr(bulk_cache.stats, field) == getattr(
                            ref_cache.stats, field)
                assert all(bulk.owner_of(i) == scalar.owner_of(i)
                           for i in range(num_items))

    @given(num_items=st.integers(1, 80), seed=seeds,
           capacity_fraction=st.floats(0.05, 1.5),
           active_target=st.floats(0.0, 1.0),
           passes=st.integers(1, 4),
           page_pow=st.integers(0, 12),
           warm_fraction=st.floats(0.0, 1.0),
           jitter=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_warm_kernel_equals_per_item_walk(self, num_items, seed,
                                              capacity_fraction, active_target,
                                              passes, page_pow, warm_fraction,
                                              jitter):
        """The segmented-LRU bulk kernel ≡ the lookup/admit walk, bit for bit.

        Random multi-pass streams over random capacities, page sizes and
        ``active_target_fraction`` values, from warm starts with promoted
        pages; ``jitter`` perturbs per-access sizes so the same item shows
        different rounded sizes (the kernel's general/mixed-size loop).
        The hit mask, every stats counter (including exact ``hit_bytes``),
        the split eviction counters, the byte occupancies and the *order*
        of both lists — what future evictions observe — must all be equal.
        """
        page = float(2 ** page_pow)
        rng = np.random.default_rng(seed)
        item_sizes = np.maximum(rng.lognormal(8.0, 1.0, num_items), 1.0)
        capacity = float(item_sizes.sum() * capacity_fraction)
        scalar = PageCache(capacity, page_bytes=page,
                           active_target_fraction=active_target)
        bulk = PageCache(capacity, page_bytes=page,
                         active_target_fraction=active_target)
        warm = rng.permutation(num_items)[:int(num_items * warm_fraction)]
        for cache in (scalar, bulk):
            for item in warm.tolist():
                if not cache.lookup(item):
                    cache.admit(item, float(item_sizes[item]))
            for item in warm.tolist()[::3]:
                cache.lookup(item)          # promote a third to active
        stream = np.concatenate([rng.permutation(num_items)
                                 for _ in range(passes)]).astype(np.int64)
        sizes = item_sizes[stream]
        if jitter:
            sizes = sizes * rng.choice([0.5, 1.0, 1.0, 2.0], size=sizes.size)
        scalar_hits = []
        for item, size in zip(stream.tolist(), sizes.tolist()):
            hit = scalar.lookup(item)
            scalar_hits.append(hit)
            if not hit:
                scalar.admit(item, size)
        bulk_hits = bulk.bulk_stream_hits(stream, sizes)
        assert bulk_hits is not None, "kernel declined a realisable stream"
        assert bulk_hits.tolist() == scalar_hits
        # List *order* equality: ordering is observable through future
        # evictions and demotions, so the kernel must reproduce it exactly.
        assert list(bulk._inactive.items()) == list(scalar._inactive.items())
        assert list(bulk._active.items()) == list(scalar._active.items())
        assert bulk.used_bytes == scalar.used_bytes
        assert bulk.active_bytes == scalar.active_bytes
        assert bulk.inactive_bytes == scalar.inactive_bytes
        assert bulk.evictions == scalar.evictions
        assert bulk.pressure_evictions == scalar.pressure_evictions
        assert bulk.explicit_evictions == scalar.explicit_evictions
        for field in ("hits", "misses", "insertions", "rejected",
                      "hit_bytes", "miss_bytes"):
            assert getattr(bulk.stats, field) == getattr(scalar.stats, field)
        # Ordering-observable future evictions: keep streaming until the
        # caches churn again and re-compare the hit masks.
        tail = rng.permutation(num_items).astype(np.int64)
        tail_sizes = item_sizes[tail]
        tail_scalar = []
        for item, size in zip(tail.tolist(), tail_sizes.tolist()):
            hit = scalar.lookup(item)
            tail_scalar.append(hit)
            if not hit:
                scalar.admit(item, size)
        tail_bulk = bulk.bulk_stream_hits(tail, tail_sizes)
        assert tail_bulk is not None
        assert tail_bulk.tolist() == tail_scalar
        assert list(bulk._inactive.items()) == list(scalar._inactive.items())
        assert list(bulk._active.items()) == list(scalar._active.items())

    @given(num_items=st.integers(1, 60), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_warm_kernel_mixed_size_fallback_is_exact(self, num_items, seed):
        """When the kernel declines (unprovable page arithmetic), the warm
        branch of ``bulk_epoch_hits`` falls back to the per-item walk with
        identical results and no double-applied side effects."""
        page = 4096.0 * (1 + 2.0 ** -52)    # dense significand: no exact multiples
        rng = np.random.default_rng(seed)
        item_sizes = np.maximum(rng.lognormal(8.0, 1.0, num_items), 1.0)
        capacity = float(item_sizes.sum() * 0.5)
        scalar = PageCache(capacity, page_bytes=page)
        bulk = PageCache(capacity, page_bytes=page)
        for cache in (scalar, bulk):                # warm both identically
            for item in range(0, num_items, 2):
                if not cache.lookup(item):
                    cache.admit(item, float(item_sizes[item]))
        for epoch in range(2):
            order = RandomSampler(num_items, seed=seed).epoch(epoch)
            sizes = item_sizes[order]
            scalar_hits = []
            for item, size in zip(order.tolist(), sizes.tolist()):
                hit = scalar.lookup(item)
                scalar_hits.append(hit)
                if not hit:
                    scalar.admit(item, size)
            assert bulk.bulk_stream_hits(order, sizes) is None
            bulk_hits = bulk.bulk_epoch_hits(order, sizes)
            assert bulk_hits.tolist() == scalar_hits
            assert list(bulk.cached_items()) == list(scalar.cached_items())
            for field in ("hits", "misses", "insertions", "rejected"):
                assert getattr(bulk.stats, field) == getattr(scalar.stats, field)

    @given(num_items=st.integers(1, 300), seed=seeds,
           capacity_pages=st.integers(1, 200), epochs=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_page_cache_bulk_epoch_matches_per_item_lookups(self, num_items, seed,
                                                            capacity_pages, epochs):
        """Bulk page-cache epochs (cold closed form + warm sweep) stay exact."""
        spec = DatasetSpec("bulkpc", "image_classification", num_items, 9_000.0,
                           item_size_cv=0.5)
        dataset = SyntheticDataset(spec, seed=seed)
        capacity = capacity_pages * 4096.0
        scalar, bulk = PageCache(capacity), PageCache(capacity)
        sampler = RandomSampler(num_items, seed=seed)
        for epoch in range(epochs):
            order = sampler.epoch(epoch)
            sizes = dataset.item_sizes(order)
            scalar_hits = []
            for item, size in zip(order.tolist(), sizes.tolist()):
                hit = scalar.lookup(item)
                scalar_hits.append(hit)
                if not hit:
                    scalar.admit(item, size)
            bulk_hits = bulk.bulk_epoch_hits(order, sizes)
            assert bulk_hits.tolist() == scalar_hits
            assert list(bulk.cached_items()) == list(scalar.cached_items())
            assert bulk.used_bytes == pytest.approx(scalar.used_bytes)
            assert bulk.active_bytes == pytest.approx(scalar.active_bytes)
            assert bulk.evictions == scalar.evictions
            for field in ("hits", "misses", "insertions", "rejected"):
                assert getattr(bulk.stats, field) == getattr(scalar.stats, field)
