"""Figure 5 — DALI's GPU-assisted prep on slow vs fast GPUs (ResNet18, 8 GPUs).

DALI can offload decode/augmentation to the GPU.  On the slower 1080Ti that
is enough to erase the prep stall with 3 cores per GPU; on the faster V100
the GPUs demand data so fast that even GPU-assisted prep leaves a ~50 % prep
stall.  The four bars — {1080Ti, V100} x {CPU-only prep, CPU+GPU prep} with
3 cores per GPU and a fully cached dataset — run as explicit
:class:`~repro.sim.sweep.SweepPoint`\\ s through one
:class:`~repro.sim.sweep.SweepRunner` per server SKU.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import PersistentPool, StoreArg


def run(scale: float = SWEEP_SCALE, dataset_name: str = "imagenet-1k",
        cores_per_gpu: int = 3, seed: int = 0,
        workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the prep-stall comparison of DALI CPU vs GPU prep."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5 — 8-GPU ResNet18: prep stalls with DALI CPU vs GPU prep",
        columns=["server", "prep_mode", "throughput", "prep_stall_pct", "epoch_time_s"],
        notes=["dataset fully cached; 3 CPU cores per GPU",
               "paper: GPU prep erases the stall on 1080Ti but leaves ~50% on V100"],
    )
    for factory in (config_hdd_1080ti, config_ssd_v100):
        server = factory()
        cores = float(min(cores_per_gpu * server.num_gpus, server.physical_cores))
        runner = SweepRunner(factory, scale=scale, seed=seed)
        sweep = runner.run([
            SweepPoint(model=RESNET18, loader="dali-shuffle", dataset=dataset_name,
                       cache_fraction=1.2, cores=cores, gpu_prep=gpu_prep)
            for gpu_prep in (False, True)
        ], workers=workers, store=store, pool=pool)
        for gpu_prep in (False, True):
            epoch = sweep.one(gpu_prep=gpu_prep).steady
            result.add_row(
                server=server.name,
                prep_mode="cpu+gpu" if gpu_prep else "cpu-only",
                throughput=epoch.throughput,
                prep_stall_pct=100.0 * epoch.prep_stall_fraction,
                epoch_time_s=epoch.epoch_time_s,
            )
    return result
