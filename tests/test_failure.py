"""Direct unit tests for :mod:`repro.coordl.failure`.

The scenario-level tests (``tests/test_failure_scenarios.py``) drive the
detector through whole simulated epochs; these pin the state machine itself:
report transitions, timeout scaling, event ordering, and the seeded
replacement choice the sweep runner's byte-identity contract relies on.
"""

from __future__ import annotations

import pytest

from repro.coordl.failure import (
    FailureDetector,
    FailureEvent,
    JobState,
    RecoveryAction,
    TimeoutReport,
)
from repro.exceptions import JobFailedError


def _report(producer: int, *, reporter: int = 0, batch: int = 7,
            at: float = 1.0) -> TimeoutReport:
    return TimeoutReport(reporting_job=reporter, missing_batch_id=batch,
                         suspected_producer=producer, reported_at=at)


class TestReportTransitions:
    def test_alive_then_dead_then_stale(self):
        """One detector walked through all three actions, in order."""
        alive = {0, 1, 2, 3}
        detector = FailureDetector(4, 1.0, liveness_probe=lambda j: j in alive)
        assert detector.report_timeout(_report(2)) is RecoveryAction.RETRY
        alive.discard(2)
        assert detector.report_timeout(_report(2)) is RecoveryAction.RESPAWN
        # A stale report never consults liveness or mutates states.
        assert detector.report_timeout(
            _report(1), batch_is_now_staged=True) is RecoveryAction.NONE
        assert detector.state(1) is JobState.RUNNING
        assert detector.state(2) is JobState.DEAD
        assert len(detector.reports) == 3
        assert len(detector.events) == 1

    def test_respawn_for_already_marked_dead_producer(self):
        detector = FailureDetector(3, 1.0)
        detector.mark_dead(1)
        assert detector.report_timeout(_report(1)) is RecoveryAction.RESPAWN

    def test_timeout_s_scales_with_iteration_time_and_multiplier(self):
        assert FailureDetector(2, 0.25).timeout_s == pytest.approx(2.5)
        assert FailureDetector(2, 0.25, timeout_multiplier=4.0).timeout_s \
            == pytest.approx(1.0)

    def test_event_ordering_matches_report_order(self):
        alive = {0, 1, 2, 3}
        detector = FailureDetector(4, 1.0, liveness_probe=lambda j: j in alive)
        alive.discard(3)
        detector.report_timeout(_report(3, at=2.0, batch=30))
        alive.discard(1)
        detector.report_timeout(_report(1, at=5.0, batch=10))
        events = detector.events
        assert [e.failed_job for e in events] == [3, 1]
        assert [e.detected_at for e in events] == [2.0, 5.0]
        assert [e.missing_batch_id for e in events] == [30, 10]
        assert all(e.kind == "crash" for e in events)

    def test_events_property_returns_a_copy(self):
        detector = FailureDetector(2, 1.0, liveness_probe=lambda j: j != 1)
        detector.report_timeout(_report(1))
        detector.events.append(FailureEvent(0, 0.0, 0, 0))
        assert len(detector.events) == 1


class TestReplacementPicking:
    def test_never_returns_dead_or_excluded_job(self):
        """Across a cascade of crashes the replacement is always a survivor."""
        for seed in (None, 0, 1, 12345):
            alive = {0, 1, 2, 3, 4}
            detector = FailureDetector(5, 1.0, seed=seed,
                                       liveness_probe=lambda j: j in alive)
            for victim in (3, 0, 4, 2):
                alive.discard(victim)
                detector.report_timeout(_report(victim, reporter=min(alive)))
                replacement = detector.events[-1].reassigned_to
                assert replacement in alive
                assert replacement != victim
            with pytest.raises(JobFailedError):
                alive.discard(1)
                detector.report_timeout(_report(1))

    def test_unseeded_detector_keeps_legacy_lowest_survivor(self):
        detector = FailureDetector(4, 1.0, liveness_probe=lambda j: j != 2)
        detector.report_timeout(_report(2))
        assert detector.events[0].reassigned_to == 0

    def test_seeded_picks_are_reproducible(self):
        """Regression: replacement choice is a pure function of the seed and
        the detector's history — replaying the same reports under the same
        seed yields identical picks (no ambient RNG)."""
        def run(seed):
            alive = {0, 1, 2, 3, 4, 5}
            detector = FailureDetector(6, 1.0, seed=seed,
                                       liveness_probe=lambda j: j in alive)
            for victim in (4, 1, 5):
                alive.discard(victim)
                detector.report_timeout(_report(victim, reporter=min(alive)))
            return [e.reassigned_to for e in detector.events]

        assert run(7) == run(7)
        assert run(8) == run(8)
        # Different seeds spread the choice (not a hard guarantee for any
        # single pair, but these two differ and pin the seed actually being
        # consumed rather than ignored).
        assert run(7) != run(8) or run(7) != [0, 0, 0]

    def test_seeded_pick_varies_with_event_count(self):
        """The digest keys on the event count, so a second crash with the
        same victim set does not have to mirror the first pick."""
        alive = {0, 1, 2, 3, 4, 5, 6, 7}
        detector = FailureDetector(8, 1.0, seed=2,
                                   liveness_probe=lambda j: j in alive)
        picks = []
        for victim in (7, 6, 5, 4):
            alive.discard(victim)
            detector.report_timeout(_report(victim, reporter=0))
            picks.append(detector.events[-1].reassigned_to)
        assert len(set(picks)) > 1  # not pinned to the lowest survivor
        assert picks != [0, 0, 0, 0]  # and not the legacy choice


class TestFailureEventKinds:
    def test_default_kind_is_crash(self):
        event = FailureEvent(failed_job=1, detected_at=0.5,
                             reassigned_to=0, missing_batch_id=3)
        assert event.kind == "crash"

    def test_sentinel_fields_for_membership_events(self):
        join = FailureEvent(failed_job=-1, detected_at=1.0,
                            reassigned_to=2, missing_batch_id=-1, kind="join")
        assert join.failed_job == -1 and join.missing_batch_id == -1
