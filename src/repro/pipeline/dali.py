"""DALI baselines: the state-of-the-art loader the paper compares against.

Two access modes are modelled (Sec. 5.1):

* ``DALI-seq`` — DALI's default ``FileReader``: files are read sequentially
  off storage and shuffled in a bounded in-memory buffer.  Sequential reads
  are faster per request but are a pathological access pattern for the LRU
  page cache (near-zero hit rate once the dataset exceeds the cache).
* ``DALI-shuffle`` — fully randomised reads, like the native PyTorch loader
  (the stronger baseline the paper uses for most comparisons).

Either mode can run pre-processing on CPU only or offload decode/augmentation
to the GPU ("GPU prep"); the paper always reports the better of the two, which
:func:`best_dali_loader` reproduces.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.base import Cache
from repro.cache.page_cache import PageCache
from repro.cluster.server import ServerConfig
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import (
    BatchSampler,
    RandomSampler,
    Sampler,
    ShuffleBufferSampler,
)
from repro.exceptions import ConfigurationError
from repro.pipeline.base import DataLoader
from repro.prep.pipeline import PrepPipeline
from repro.storage.filestore import FileStore


class DALILoader(DataLoader):
    """DALI data loader (page cache + nvJPEG prep, optional GPU offload)."""

    name = "dali"

    def __init__(self, *args, mode: str = "shuffle", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._mode = mode
        self.name = f"dali-{mode}" + ("-gpuprep" if self.uses_gpu_prep else "")

    @property
    def mode(self) -> str:
        """Access mode: "seq" or "shuffle"."""
        return self._mode

    @classmethod
    def build(cls, dataset: SyntheticDataset, server: ServerConfig,
              batch_size: int, mode: str = "shuffle", gpu_prep: bool = False,
              num_gpus: Optional[int] = None, cores: Optional[float] = None,
              cache: Optional[Cache] = None, seed: int = 0,
              use_hyperthreads: bool = False,
              sampler: Optional[Sampler] = None) -> "DALILoader":
        """Construct a DALI loader for one training job on one server.

        Args:
            dataset: Dataset to train on.
            server: Server the job runs on.
            batch_size: Per-iteration (per-job) batch size.
            mode: "seq" (sequential storage reads + shuffle buffer) or
                "shuffle" (random reads).
            gpu_prep: Offload decode/augmentation to the GPUs.
            num_gpus: GPUs used by the job (default: all on the server).
            cores: Physical prep cores for this job (default: all).
            cache: Shared page cache (fresh one when omitted).
            seed: Sampler seed.
            use_hyperthreads: Let prep use hyper-threads beyond the physical
                cores (Appendix B.1).
            sampler: Ready-made item-order sampler to reuse (parameter sweeps
                share one memoised sampler across loaders); the mode-specific
                default is built when omitted.
        """
        if mode not in ("seq", "shuffle"):
            raise ConfigurationError(f"unknown DALI mode {mode!r}")
        gpus = num_gpus if num_gpus is not None else server.num_gpus
        prep = PrepPipeline.for_task(dataset.spec.task, library="dali")
        prep = prep.with_scaled_cost(dataset.spec.prep_cost_scale)
        workers = server.worker_pool(cores=cores, gpu_offload=gpu_prep,
                                     use_hyperthreads=use_hyperthreads)
        page_cache = cache if cache is not None else PageCache(server.cache_bytes)
        if sampler is None and mode == "seq":
            # DALI-seq walks the (small, per-sample) files in storage order.
            # That order is pathological for the page cache, and because the
            # dataset is millions of individual files the reads do not come
            # close to the device's large-transfer sequential bandwidth, so
            # misses are still charged at the random-read rate.  True
            # sequential-bandwidth reads only apply to TFRecord-style chunked
            # layouts (see repro.datasets.records / Table 3).
            sampler = ShuffleBufferSampler(len(dataset),
                                           buffer_size=max(1, 4 * batch_size),
                                           seed=seed)
        elif sampler is None:
            sampler = RandomSampler(len(dataset), seed=seed)
        sequential = False
        return cls(
            dataset=dataset,
            store=FileStore(dataset, server.storage),
            cache=page_cache,
            batch_sampler=BatchSampler(sampler, batch_size),
            prep=prep,
            workers=workers,
            num_gpus=gpus,
            sequential_storage=sequential,
            mode=mode,
        )


def best_dali_loader(dataset: SyntheticDataset, server: ServerConfig,
                     batch_size: int, model_gpu_prep_interference: float = 0.0,
                     mode: str = "shuffle", num_gpus: Optional[int] = None,
                     cores: Optional[float] = None, cache: Optional[Cache] = None,
                     seed: int = 0, sampler: Optional[Sampler] = None) -> DALILoader:
    """Pick DALI's CPU-prep or GPU-prep variant, whichever is faster.

    The paper always runs DALI in "best of CPU or GPU based prep" mode
    (Sec. 5).  GPU prep raises the prep rate but steals compute from the
    model, so for compute-heavy models (ResNet50, VGG11) CPU prep wins.  The
    decision here compares the prep-rate gain against the compute loss using
    the model's published interference factor.
    """
    cpu_loader = DALILoader.build(dataset, server, batch_size, mode=mode,
                                  gpu_prep=False, num_gpus=num_gpus,
                                  cores=cores, cache=cache, seed=seed,
                                  sampler=sampler)
    gpu_loader = DALILoader.build(dataset, server, batch_size, mode=mode,
                                  gpu_prep=True, num_gpus=num_gpus,
                                  cores=cores, cache=cache, seed=seed,
                                  sampler=sampler)
    cpu_rate = cpu_loader.prep_rate()
    gpu_rate = gpu_loader.prep_rate() * (1.0 - model_gpu_prep_interference)
    return gpu_loader if gpu_rate > cpu_rate else cpu_loader
