"""Table 7 — HP search with a fully cached dataset (ImageNet-1K).

Even with no storage I/O at all, eight concurrent HP-search jobs are slowed by
redundant pre-processing: each job only gets 3 of the 24 cores.  CoorDL's
coordinated prep removes the redundancy and speeds the jobs up by 1.2-1.9x,
the exact factor depending on how far each model's GPU ingestion rate exceeds
a 3-core prep pipeline.  The per-model baseline/CoorDL grid runs through
:class:`~repro.sim.sweep.SweepRunner`'s HP-search points (the fully-cached
regime is the analytic page-cache fast path).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import IMAGE_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.units import speedup
from repro.store import PersistentPool, StoreArg


def run(scale: float = SWEEP_SCALE, num_jobs: int = 8,
        dataset_name: str = "imagenet-1k",
        models: Optional[Sequence[ModelSpec]] = None,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the fully-cached HP-search speedups of Table 7."""
    chosen = list(models) if models is not None else list(IMAGE_MODELS)
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    # A cache larger than the dataset removes every fetch stall.
    sweep = runner.run(SweepRunner.grid(
        models=chosen, loaders=["hp-baseline", "hp-coordl"],
        cache_fractions=[1.2], dataset=dataset_name,
        num_jobs=num_jobs, gpus_per_job=1), workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="tab7",
        title=f"Table 7 — {num_jobs}-job HP search with the dataset fully cached "
              "(Config-SSD-V100)",
        columns=["model", "dali_samples_per_s", "coordl_samples_per_s", "speedup"],
        notes=["paper: DALI per-job speeds 552-1441 samples/s; CoorDL speedups "
               "1.21-1.87x by eliminating redundant prep"],
    )
    for model in chosen:
        baseline = sweep.one(model=model, loader="hp-baseline").hp
        coordl = sweep.one(model=model, loader="hp-coordl").hp
        result.add_row(
            model=model.name,
            dali_samples_per_s=baseline.per_job_throughput,
            coordl_samples_per_s=coordl.per_job_throughput,
            speedup=speedup(baseline.epoch_time_s, coordl.epoch_time_s),
        )
    return result
