"""Beyond-paper what-ifs — failure & elasticity scenarios as sweep points.

The paper evaluates CoorDL on static, healthy clusters; Sec. 4.4 describes
the failure-detection protocol (a worker that misses its timeout is declared
dead and its pending minibatch reassigned) but never quantifies what a crash
*costs*.  These four experiments drive
:class:`~repro.sim.failures.FailureScenario` through the sweep executor to
answer that and three neighbouring questions:

* ``fig_crash`` — CoorDL workers crashing mid-training: detection stalls
  (``timeout = 10 x iteration time``) plus the cache re-warm I/O for the
  dead worker's slice of the shared MinIO cache;
* ``fig_elastic`` — servers joining/leaving a partitioned-cache group:
  joiners warm organically through the miss path, leavers drop their cached
  bytes and survivors re-fetch them from storage;
* ``fig_straggler`` — skewed per-server network/disk rates: the epoch is
  bound by the slowest rank, so one 4x-degraded server drags the job;
* ``fig_multitenant`` — HP-search campaigns competing for one shared page
  cache: the baseline loader thrashes harder as tenants multiply while
  CoorDL's per-job accounting stays flat.

Every scenario runs as first-class sweep points (kinds
``coordl-crash`` / ``coordl-elastic`` / ``coordl-straggler`` /
``hp-multitenant``), so process parallelism, the content-addressed store,
the serve layer and the golden harness all apply unchanged, and each record
carries its deterministic :class:`~repro.coordl.failure.FailureEvent` trace.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import PersistentPool, StoreArg
from repro.units import speedup

__all__ = ["run_crash", "run_elastic", "run_straggler", "run_multitenant"]

#: Crash schedules swept by ``fig_crash``: () is the healthy baseline.
DEFAULT_CRASH_SCHEDULES: Tuple[Tuple[Tuple[int, int], ...], ...] = (
    (), ((1, 1),), ((1, 1), (2, 3)),
)

#: Membership schedules swept by ``fig_elastic`` as (num_servers, schedule).
DEFAULT_MEMBERSHIP: Tuple[Tuple[int, Tuple[Tuple[int, int], ...]], ...] = (
    (2, ()), (2, ((1, 4),)), (4, ((2, 2),)),
)

#: Per-rank degradation factors swept by ``fig_straggler``.
DEFAULT_STRAGGLER_FACTORS: Tuple[Tuple[float, ...], ...] = (
    (), (2.0,), (4.0,), (1.0, 2.0),
)

#: Tenant counts swept by ``fig_multitenant``.
DEFAULT_TENANTS: Tuple[int, ...] = (1, 2, 4)


def _schedule_label(schedule: Tuple[Tuple[int, int], ...]) -> str:
    if not schedule:
        return "healthy"
    return ",".join(f"e{epoch}:j{job}" for epoch, job in schedule)


def run_crash(scale: float = SWEEP_SCALE, num_jobs: int = 4,
              cache_fraction: float = 0.65,
              schedules: Sequence[Tuple[Tuple[int, int], ...]] = DEFAULT_CRASH_SCHEDULES,
              num_epochs: int = 4, seed: int = 0,
              workers: Optional[int] = None, store: StoreArg = None,
              pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Worker crashes mid-training: detection stall + cache re-warm cost."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    points = [
        SweepPoint(model=RESNET18, loader="coordl-crash", dataset="openimages",
                   cache_fraction=cache_fraction, num_epochs=num_epochs,
                   num_jobs=num_jobs, crash_schedule=tuple(schedule),
                   label=_schedule_label(tuple(schedule)))
        for schedule in schedules
    ]
    sweep = runner.run(points, workers=workers, store=store, pool=pool)
    baseline = sweep.one(label=_schedule_label(())).failure
    result = ExperimentResult(
        experiment_id="fig_crash",
        title=f"What-if — CoorDL worker crashes ({num_jobs} jobs, SSD server)",
        columns=["schedule", "crashes", "epoch_time_s", "slowdown",
                 "rewarm_gb", "degraded_epochs", "events"],
        notes=["beyond-paper: Sec. 4.4 failure protocol, timeout = 10x iteration time",
               "slowdown is steady epoch time vs the healthy baseline",
               "rewarm GB is storage re-fetch of the dead workers' cache slices"],
    )
    for record in sweep.records:
        failure = record.failure
        result.add_row(
            schedule=record.point.label,
            crashes=len(record.point.crash_schedule),
            epoch_time_s=failure.steady_epoch_time_s,
            slowdown=speedup(failure.steady_epoch_time_s,
                             baseline.steady_epoch_time_s),
            rewarm_gb=failure.total_rewarm_bytes / 1e9,
            degraded_epochs=failure.degraded_epochs,
            events=len(failure.events),
        )
    return result


def run_elastic(scale: float = SWEEP_SCALE, cache_fraction: float = 0.5,
                memberships: Sequence[Tuple[int, Tuple[Tuple[int, int], ...]]] = DEFAULT_MEMBERSHIP,
                num_epochs: int = 4, seed: int = 0,
                workers: Optional[int] = None, store: StoreArg = None,
                pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Servers joining/leaving a CoorDL partition mid-training."""
    runner = SweepRunner(config_hdd_1080ti, scale=scale, seed=seed)
    points = []
    for num_servers, schedule in memberships:
        label = (f"static-{num_servers}" if not schedule else
                 ",".join(f"e{epoch}:n{count}" for epoch, count in schedule))
        points.append(SweepPoint(
            model=RESNET18, loader="coordl-elastic", dataset="openimages",
            cache_fraction=cache_fraction, num_epochs=num_epochs,
            num_servers=num_servers, membership_schedule=tuple(schedule),
            label=label))
    sweep = runner.run(points, workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig_elastic",
        title="What-if — elastic CoorDL partition membership (HDD servers)",
        columns=["scenario", "start_servers", "epoch_time_s",
                 "disk_gb", "rewarm_gb", "events"],
        notes=["beyond-paper: joiners warm through the miss path, leavers drop their cache",
               "epoch time is the steady mean over epochs after the first"],
    )
    for record in sweep.records:
        failure = record.failure
        result.add_row(
            scenario=record.point.label,
            start_servers=record.point.num_servers,
            epoch_time_s=failure.steady_epoch_time_s,
            disk_gb=failure.total_disk_bytes / 1e9,
            rewarm_gb=failure.total_rewarm_bytes / 1e9,
            events=len(failure.events),
        )
    return result


def run_straggler(scale: float = SWEEP_SCALE, num_servers: int = 2,
                  cache_fraction: float = 0.5,
                  factor_sets: Sequence[Tuple[float, ...]] = DEFAULT_STRAGGLER_FACTORS,
                  num_epochs: int = 3, seed: int = 0,
                  workers: Optional[int] = None, store: StoreArg = None,
                  pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Skewed per-server network/disk rates bounding the epoch."""
    runner = SweepRunner(config_hdd_1080ti, scale=scale, seed=seed)
    points = [
        SweepPoint(model=RESNET18, loader="coordl-straggler",
                   dataset="openimages", cache_fraction=cache_fraction,
                   num_epochs=num_epochs, num_servers=num_servers,
                   straggler_factors=tuple(factors),
                   label="uniform" if not factors else
                         "x".join(f"{f:g}" for f in factors))
        for factors in factor_sets
    ]
    sweep = runner.run(points, workers=workers, store=store, pool=pool)
    baseline = sweep.one(label="uniform").failure
    result = ExperimentResult(
        experiment_id="fig_straggler",
        title=f"What-if — straggling servers in a {num_servers}-server partition",
        columns=["factors", "epoch_time_s", "slowdown", "events"],
        notes=["beyond-paper: factor f multiplies rank i's fetch time (network + disk)",
               "the epoch is bound by the slowest rank"],
    )
    for record in sweep.records:
        failure = record.failure
        result.add_row(
            factors=record.point.label,
            epoch_time_s=failure.steady_epoch_time_s,
            slowdown=speedup(failure.steady_epoch_time_s,
                             baseline.steady_epoch_time_s),
            events=len(failure.events),
        )
    return result


def run_multitenant(scale: float = SWEEP_SCALE, num_jobs: int = 2,
                    cache_fraction: float = 0.65,
                    tenants: Sequence[int] = DEFAULT_TENANTS,
                    num_epochs: int = 3, seed: int = 0,
                    workers: Optional[int] = None, store: StoreArg = None,
                    pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """HP campaigns competing for one shared page cache."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    points = [
        SweepPoint(model=RESNET18, loader="hp-multitenant",
                   dataset="openimages", cache_fraction=cache_fraction,
                   num_epochs=num_epochs, num_jobs=num_jobs,
                   tenants=count, label=f"tenants-{count}")
        for count in tenants
    ]
    sweep = runner.run(points, workers=workers, store=store, pool=pool)
    baseline = sweep.one(tenants=min(tenants)).failure
    result = ExperimentResult(
        experiment_id="fig_multitenant",
        title=f"What-if — multi-tenant HP search ({num_jobs} jobs per campaign)",
        columns=["tenants", "total_jobs", "epoch_time_s", "slowdown",
                 "disk_gb", "miss_ratio"],
        notes=["beyond-paper: campaigns share one page cache and split the CPU cores",
               "slowdown is steady epoch time vs the fewest-tenants row"],
    )
    for record in sweep.records:
        failure = record.failure
        result.add_row(
            tenants=record.point.tenants,
            total_jobs=record.point.tenants * num_jobs,
            epoch_time_s=failure.steady_epoch_time_s,
            slowdown=speedup(failure.steady_epoch_time_s,
                             baseline.steady_epoch_time_s),
            disk_gb=failure.total_disk_bytes / 1e9,
            miss_ratio=failure.epochs[-1].cache_miss_ratio,
        )
    return result
