"""Concurrency tests for the content-addressed store (``repro.store``).

The write-once concurrency contract the serve layer builds on:

* **concurrent writers never corrupt** — many threads putting the same
  key leave exactly one valid entry (first writer stores, the rest are
  ``redundant``), and racing writers that all miss the existence check
  still converge on identical bytes;
* **readers racing writers** — a reader sees either a miss or the one
  true entry, never torn bytes; proven by replaying the store's recorded
  read/write trace through :func:`~repro.store.verify_store_trace`
  (write-once + reads-serve-writes, checked over digests of the actual
  bytes each operation touched);
* **corruption degrades and repairs** — a truncated entry is a counted
  invalid miss, is deleted so the write-once ``put`` can re-store it, and
  the repair round-trips byte-identically;
* **no stray temp files** — atomic-write temp names are unique per
  (process, thread, attempt) and cleaned up on every path;
* the trace checker itself **rejects fabricated inconsistent histories**
  (it must be able to fail, or passing it proves nothing).
"""

from __future__ import annotations

import json
import threading

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import StoreTraceEvent, SweepStore, verify_store_trace

SCALE = 1 / 500.0


def _runner() -> SweepRunner:
    return SweepRunner(config_ssd_v100, scale=SCALE, seed=0)


def _point(fraction: float = 0.5) -> SweepPoint:
    return SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                      cache_fraction=fraction)


def _simulate(runner: SweepRunner, point: SweepPoint):
    return runner.run([point]).records[0]


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert not any(thread.is_alive() for thread in threads)


class TestConcurrentWriters:
    def test_same_key_put_race_is_write_once(self, tmp_path):
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(tmp_path / "store")
        key = store.key_for(runner, point)
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            store.put(key, record)

        _run_threads([writer] * 8)
        assert store.puts + store.redundant_puts == 8
        assert store.puts >= 1
        # Exactly one valid entry on disk, rehydrating byte-identically.
        assert store.stats().entries == 1
        rehydrated = SweepStore(tmp_path / "store").get(key, point)
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))

    def test_racing_past_the_existence_check_converges(self, tmp_path):
        """Two stores (no shared lock or counters) writing the same key:
        both may store, but the surviving bytes are valid and identical."""
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        stores = [SweepStore(tmp_path / "store") for _ in range(4)]
        key = stores[0].key_for(runner, point)
        barrier = threading.Barrier(4)

        def writer(store):
            barrier.wait()
            store.put(key, record)

        _run_threads([lambda s=s: writer(s) for s in stores])
        entry = stores[0].entry_path(key)
        assert json.loads(entry.read_text())["key"] == key
        rehydrated = SweepStore(tmp_path / "store").get(key, point)
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))

    def test_no_stray_temp_files(self, tmp_path):
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(tmp_path / "store")
        key = store.key_for(runner, point)

        def writer():
            for _ in range(5):
                store.put(key, record)

        _run_threads([writer] * 6)
        strays = [p for p in (tmp_path / "store").rglob("*")
                  if p.is_file() and not p.name.endswith(".json")]
        assert strays == []


class TestTraceConsistency:
    def test_concurrent_readers_and_writers_trace_verifies(self, tmp_path):
        """8 threads mixing gets and puts over overlapping keys: the store's
        own read/write trace satisfies the write-once contract."""
        runner = _runner()
        points = [_point(fraction) for fraction in (0.3, 0.5, 0.7)]
        records = {p.cache_fraction: _simulate(runner, p) for p in points}
        store = SweepStore(tmp_path / "store", trace=True)
        keys = {p.cache_fraction: store.key_for(runner, p) for p in points}
        barrier = threading.Barrier(8)

        def reader():
            barrier.wait()
            for _ in range(10):
                for point in points:
                    store.get(keys[point.cache_fraction], point)

        def writer():
            barrier.wait()
            for _ in range(5):
                for point in points:
                    store.put(keys[point.cache_fraction],
                              records[point.cache_fraction])

        _run_threads([reader] * 4 + [writer] * 4)
        assert store.trace_events, "tracing was on but recorded nothing"
        assert verify_store_trace(store.trace_events) == []
        # Sanity over the counters the trace is built from.  Writers racing
        # past the existence check may all store (identical bytes), so puts
        # is bounded by the writer count, not pinned to one per key.
        assert len(points) <= store.puts <= 4 * len(points)
        assert store.puts + store.redundant_puts == 4 * 5 * len(points)
        assert store.hits + store.misses == 4 * 10 * len(points)

    def test_verifier_rejects_conflicting_writes(self):
        events = [
            StoreTraceEvent(seq=0, op="put", key="k1", outcome="stored",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=1, op="put", key="k1", outcome="stored",
                            digest="bbbb", thread=2),
        ]
        violations = verify_store_trace(events)
        assert len(violations) == 1
        assert "write-once violated" in violations[0]

    def test_verifier_rejects_reads_of_unwritten_bytes(self):
        events = [
            StoreTraceEvent(seq=0, op="put", key="k1", outcome="stored",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=1, op="get", key="k1", outcome="hit",
                            digest="cccc", thread=2),
        ]
        violations = verify_store_trace(events)
        assert len(violations) == 1
        assert "no put of that key wrote" in violations[0]

    def test_verifier_rejects_disagreeing_preexisting_hits(self):
        events = [
            StoreTraceEvent(seq=0, op="get", key="k2", outcome="hit",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=1, op="get", key="k2", outcome="hit",
                            digest="bbbb", thread=2),
        ]
        violations = verify_store_trace(events)
        assert len(violations) == 1
        assert "disagree" in violations[0]

    def test_verifier_accepts_consistent_history(self):
        events = [
            StoreTraceEvent(seq=0, op="get", key="k1", outcome="miss",
                            digest=None, thread=1),
            StoreTraceEvent(seq=1, op="put", key="k1", outcome="stored",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=2, op="put", key="k1", outcome="redundant",
                            digest=None, thread=2),
            StoreTraceEvent(seq=3, op="get", key="k1", outcome="hit",
                            digest="aaaa", thread=2),
        ]
        assert verify_store_trace(events) == []


class TestCorruptionRepair:
    def test_truncated_entry_is_invalid_miss_then_repaired(self, tmp_path):
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(tmp_path / "store", trace=True)
        key = store.key_for(runner, point)
        path = store.put(key, record)
        path.write_bytes(path.read_bytes()[: 25])  # torn write / truncation
        assert store.get(key, point) is None
        assert store.invalid == 1 and store.misses == 1
        assert not path.exists()  # deleted, re-opening the write-once key
        # The repairing put stores (not redundant), and the entry serves.
        store.put(key, record)
        assert store.puts == 2 and store.redundant_puts == 0
        rehydrated = store.get(key, point)
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))
        assert verify_store_trace(store.trace_events) == []

    def test_concurrent_truncation_and_reads_never_serve_wrong_bytes(
            self, tmp_path):
        """Readers racing a corrupter and a repairer: every hit served the
        one true content (checked over the recorded trace)."""
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(tmp_path / "store", trace=True)
        key = store.key_for(runner, point)
        path = store.put(key, record)
        payload = path.read_bytes()
        barrier = threading.Barrier(6)
        stop = threading.Event()

        def reader():
            barrier.wait()
            while not stop.is_set():
                result = store.get(key, point)
                if result is not None:
                    assert (result.snapshot(include_timeline=True)
                            == record.snapshot(include_timeline=True))

        def corrupter():
            barrier.wait()
            for _ in range(10):
                try:
                    path.write_bytes(payload[: 30])
                except OSError:
                    pass

        def repairer():
            barrier.wait()
            for _ in range(20):
                store.put(key, record)
            stop.set()

        _run_threads([reader] * 4 + [corrupter, repairer])
        stop.set()
        # Write-once + reads-serve-writes must hold over the whole ordeal;
        # corrupted reads appear as invalid (not hit) events and pass.
        assert verify_store_trace(store.trace_events) == []
